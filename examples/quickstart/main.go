// Quickstart: the smallest end-to-end use of the library.
//
// It builds a random probing tree, simulates a measurement campaign with the
// paper's LLRD1/Gilbert loss workload, learns the link variances from m
// snapshots (Phase 1), infers the per-link loss rates of a fresh snapshot
// (Phase 2), and prints inferred-vs-true rates for every congested link.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"math/rand/v2"

	"lia/internal/core"
	"lia/internal/lossmodel"
	"lia/internal/netsim"
	"lia/internal/topogen"
	"lia/internal/topology"
)

func main() {
	rng := rand.New(rand.NewPCG(42, 0))

	// 1. A 300-node random tree: the beacon at the root probes every leaf.
	network := topogen.Tree(rng, 300, 10)
	paths := topogen.Routes(network, []int{0}, network.Hosts)
	rm, err := topology.Build(paths)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("topology: %d paths × %d virtual links, rank(R)=%d — first moments alone cannot identify the links\n",
		rm.NumPaths(), rm.NumLinks(), rm.Rank())
	fmt.Printf("identifiable via second moments (Theorem 1): %v\n\n", core.Identifiable(rm))

	// 2. Ground truth: 10% of links congested (LLRD1), Gilbert burst losses.
	scen := lossmodel.NewScenario(lossmodel.Config{
		Model:    lossmodel.LLRD1,
		Fraction: 0.10,
	}, rng, rm.NumLinks())
	sim := netsim.New(rm, netsim.Config{Probes: 1000, Seed: 7})

	// 3. Phase 1: learn link variances from m = 50 snapshots.
	lia := core.New(rm, core.Options{})
	const m = 50
	for s := 0; s < m; s++ {
		if s > 0 {
			scen.Advance()
		}
		lia.AddSnapshot(sim.Run(scen.Rates()).LogRates())
	}

	// 4. Phase 2: infer the next snapshot's loss rates.
	scen.Advance()
	truth := append([]float64(nil), scen.Rates()...)
	snap := sim.Run(truth)
	res, err := lia.Infer(snap.LogRates())
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("eliminated %d near-lossless links, solved %d (R* has full column rank)\n\n",
		len(res.Removed), len(res.Kept))
	fmt.Println("link   true rate  realized  inferred  variance")
	misses := 0
	for k, q := range truth {
		if q <= lossmodel.Threshold {
			continue
		}
		fmt.Printf("%4d    %.4f    %.4f    %.4f   %.2e\n",
			k, q, snap.LinkRealized[k], res.LossRates[k], res.Variances[k])
		if res.LossRates[k] <= lossmodel.Threshold {
			misses++
		}
	}
	fmt.Printf("\nmissed congested links: %d\n", misses)
}
