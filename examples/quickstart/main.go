// Quickstart: the smallest end-to-end use of the library, entirely through
// the public lia package.
//
// It builds a random probing tree, streams a simulated measurement campaign
// (the paper's LLRD1/Gilbert loss workload) into the engine through a
// SnapshotSource, learns the link variances from m snapshots (Phase 1),
// infers the per-link loss rates of a fresh snapshot (Phase 2), and prints
// inferred-vs-true rates for every congested link.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand/v2"

	"lia"
	"lia/internal/lossmodel"
	"lia/internal/topogen"
)

func main() {
	ctx := context.Background()
	rng := rand.New(rand.NewPCG(42, 0))

	// 1. A 300-node random tree: the beacon at the root probes every leaf.
	network := topogen.Tree(rng, 300, 10)
	paths := topogen.Routes(network, []int{0}, network.Hosts)
	rm, err := lia.NewTopology(paths)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("topology: %d paths × %d virtual links, rank(R)=%d — first moments alone cannot identify the links\n",
		rm.NumPaths(), rm.NumLinks(), rm.Rank())
	fmt.Printf("identifiable via second moments (Theorem 1): %v\n\n", lia.Identifiable(rm))

	// 2. A simulated measurement campaign: 10% of links congested (LLRD1),
	// Gilbert burst losses, S = 1000 probes per snapshot.
	src := lia.NewSimSource(rm, lia.SimConfig{Probes: 1000, Seed: 7})

	// 3. Phase 1: learn link variances from m = 50 snapshots.
	eng, err := lia.NewEngine(rm)
	if err != nil {
		log.Fatal(err)
	}
	const m = 50
	if _, err := eng.Consume(ctx, lia.Limit(src, m)); err != nil {
		log.Fatal(err)
	}

	// 4. Phase 2: infer the next snapshot's loss rates. The simulator-backed
	// source carries the ground truth alongside the observations.
	probe, err := src.Next(ctx)
	if err != nil {
		log.Fatal(err)
	}
	res, err := eng.Infer(ctx, probe.Y)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("eliminated %d near-lossless links, solved %d (R* has full column rank)\n\n",
		len(res.Removed), len(res.Kept))
	fmt.Println("link   true rate  inferred  variance")
	misses := 0
	for k, q := range probe.Truth {
		if q <= lossmodel.Threshold {
			continue
		}
		fmt.Printf("%4d    %.4f    %.4f   %.2e\n",
			k, q, res.LossRates[k], res.Variances[k])
		if res.LossRates[k] <= lossmodel.Threshold {
			misses++
		}
	}
	fmt.Printf("\nmissed congested links: %d\n", misses)
}
