// Meshmonitor: continuous congested-link localisation on a multi-beacon
// mesh — the deployment the paper's introduction motivates: a handful of
// cooperating end hosts monitoring an ISP-scale topology with nothing but
// unicast probes.
//
// Every monitoring round the scenario moves (congested links re-draw their
// levels), the monitor ingests the new snapshot, refreshes its variance
// estimates over a sliding interest window, and reports which links it
// would page an operator about — compared against ground truth.
//
//	go run ./examples/meshmonitor
package main

import (
	"fmt"
	"log"
	"math/rand/v2"

	"lia/internal/core"
	"lia/internal/lossmodel"
	"lia/internal/netsim"
	"lia/internal/stats"
	"lia/internal/topogen"
	"lia/internal/topology"
)

func main() {
	rng := rand.New(rand.NewPCG(2024, 0))

	// A Waxman mesh monitored from 10 low-degree end hosts (all pairs).
	network := topogen.Waxman(rng, 250, 0.18, 0.22)
	hosts := topogen.SelectHosts(rng, network, 10)
	paths := topogen.Routes(network, hosts, hosts)
	paths, flut := topology.RemoveFluttering(paths)
	rm, err := topology.Build(paths)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("monitoring %d paths over %d virtual links from %d beacons (%d fluttering paths dropped)\n\n",
		rm.NumPaths(), rm.NumLinks(), len(hosts), len(flut))

	scen := lossmodel.NewScenario(lossmodel.Config{
		Model:    lossmodel.LLRD1,
		Fraction: 0.08,
		Episodic: 0.5, // congestion comes and goes between rounds
	}, rng, rm.NumLinks())
	sim := netsim.New(rm, netsim.Config{Probes: 1000, Seed: 99})

	lia := core.New(rm, core.Options{})
	const warmup = 40
	for s := 0; s < warmup; s++ {
		if s > 0 {
			scen.Advance()
		}
		lia.AddSnapshot(sim.Run(scen.Rates()).LogRates())
	}

	gate := core.VarGateAt(lossmodel.Threshold, 1000)
	fmt.Println("round  alarms  hits  misses  false")
	var totDR, totFPR float64
	const rounds = 8
	for round := 0; round < rounds; round++ {
		scen.Advance()
		truthRates := append([]float64(nil), scen.Rates()...)
		snap := sim.Run(truthRates)
		res, err := lia.Infer(snap.LogRates())
		if err != nil {
			log.Fatal(err)
		}
		alarms := res.CongestedGated(lossmodel.Threshold, gate)
		truth := make([]bool, rm.NumLinks())
		for k, q := range truthRates {
			truth[k] = q > lossmodel.Threshold
		}
		det := stats.Detect(truth, alarms)
		nAlarms := 0
		for _, a := range alarms {
			if a {
				nAlarms++
			}
		}
		fmt.Printf("%5d  %6d  %4d  %6d  %5d\n",
			round, nAlarms, det.TruePositives, det.FalseNegatives, det.FalsePositives)
		totDR += det.DR
		totFPR += det.FPR
		// The monitor keeps learning from what it just measured.
		lia.AddSnapshot(snap.LogRates())
	}
	fmt.Printf("\nmean detection rate %.1f%%, mean false positive rate %.1f%%\n",
		100*totDR/rounds, 100*totFPR/rounds)
}
