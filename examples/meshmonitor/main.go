// Meshmonitor: continuous congested-link localisation on a multi-beacon
// mesh — the deployment the paper's introduction motivates: a handful of
// cooperating end hosts monitoring an ISP-scale topology with nothing but
// unicast probes.
//
// Every monitoring round the scenario moves (congested links re-draw their
// levels), the monitor ingests the new snapshot, refreshes its variance
// estimates, and reports which links it would page an operator about —
// compared against the simulator's ground truth, which the SnapshotSource
// carries alongside each observation.
//
//	go run ./examples/meshmonitor
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand/v2"

	"lia"
	"lia/internal/lossmodel"
	"lia/internal/stats"
	"lia/internal/topogen"
	"lia/internal/topology"
)

func main() {
	ctx := context.Background()
	rng := rand.New(rand.NewPCG(2024, 0))

	// A Waxman mesh monitored from 10 low-degree end hosts (all pairs).
	network := topogen.Waxman(rng, 250, 0.18, 0.22)
	hosts := topogen.SelectHosts(rng, network, 10)
	paths := topogen.Routes(network, hosts, hosts)
	paths, flut := topology.RemoveFluttering(paths)
	rm, err := lia.NewTopology(paths)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("monitoring %d paths over %d virtual links from %d beacons (%d fluttering paths dropped)\n\n",
		rm.NumPaths(), rm.NumLinks(), len(hosts), len(flut))

	// Congestion comes and goes between rounds (episodic LLRD1 workload).
	src := lia.NewSimSource(rm, lia.SimConfig{
		Probes:            1000,
		Seed:              99,
		CongestedFraction: 0.08,
		Episodic:          0.5,
	})

	eng, err := lia.NewEngine(rm)
	if err != nil {
		log.Fatal(err)
	}
	const warmup = 40
	if _, err := eng.Consume(ctx, lia.Limit(src, warmup)); err != nil {
		log.Fatal(err)
	}

	gate := lia.VarGateAt(lossmodel.Threshold, 1000)
	fmt.Println("round  alarms  hits  misses  false")
	var totDR, totFPR float64
	const rounds = 8
	for round := 0; round < rounds; round++ {
		snap, err := src.Next(ctx)
		if err != nil {
			log.Fatal(err)
		}
		res, err := eng.Infer(ctx, snap.Y)
		if err != nil {
			log.Fatal(err)
		}
		alarms := res.CongestedGated(lossmodel.Threshold, gate)
		truth := make([]bool, rm.NumLinks())
		for k, q := range snap.Truth {
			truth[k] = q > lossmodel.Threshold
		}
		det := stats.Detect(truth, alarms)
		nAlarms := 0
		for _, a := range alarms {
			if a {
				nAlarms++
			}
		}
		fmt.Printf("%5d  %6d  %4d  %6d  %5d\n",
			round, nAlarms, det.TruePositives, det.FalseNegatives, det.FalsePositives)
		totDR += det.DR
		totFPR += det.FPR
		// The monitor keeps learning from what it just measured.
		if err := eng.Ingest(snap.Y); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("\nmean detection rate %.1f%%, mean false positive rate %.1f%%\n",
		100*totDR/rounds, 100*totFPR/rounds)
}
