// Overlay: the measurement plane over real UDP sockets, end to end in one
// process — the miniature of the paper's PlanetLab deployment.
//
// A network core emulates a 8-site research network; beacons send real UDP
// probes through it; traceroute (with silent routers and interface aliases)
// discovers the topology; sinks report received counts to a TCP collector;
// and LIA infers per-link loss rates from the collected snapshots.
//
//	go run ./examples/overlay
package main

import (
	"context"
	"fmt"
	"log"
	"math"
	"math/rand/v2"

	"lia"
	"lia/internal/emunet"
	"lia/internal/lossmodel"
	"lia/internal/topogen"
	"lia/internal/topology"
)

func main() {
	rng := rand.New(rand.NewPCG(7, 0))
	network := topogen.PlanetLabLike(rng, 8, 2)
	hosts := topogen.SelectHosts(rng, network, 6)
	paths := topogen.Routes(network, hosts, hosts)
	paths, _ = topology.RemoveFluttering(paths)

	lab, err := emunet.NewLab(network, paths, emunet.LabConfig{
		Probes: 400,
		Seed:   7,
		Loss:   lossmodel.Config{Fraction: 0.08},
	})
	if err != nil {
		log.Fatal(err)
	}
	defer lab.Close()
	fmt.Printf("overlay up: %d paths between %d hosts, collector at %s\n",
		len(paths), len(hosts), lab.CollectorAddr())

	// Topology discovery over the wire (silent routers, aliases and all).
	discovered, err := lab.Discover()
	if err != nil {
		log.Fatal(err)
	}
	discovered, _ = topology.RemoveFluttering(discovered)
	rm, err := lia.NewTopology(discovered)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("traceroute discovered %d paths / %d virtual links; identifiable=%v\n\n",
		rm.NumPaths(), rm.NumLinks(), lia.Identifiable(rm))

	// Measurement campaign: m learning snapshots plus one to diagnose.
	const m = 15
	for s := 0; s <= m; s++ {
		if _, err := lab.RunSnapshot(); err != nil {
			log.Fatal(err)
		}
	}
	fracs := lab.History()

	// The emulated overlay's recorded fractions stream into the engine
	// through the trace adapter.
	ctx := context.Background()
	eng, err := lia.NewEngine(rm)
	if err != nil {
		log.Fatal(err)
	}
	if _, err := eng.Consume(ctx, lia.NewTraceSource(fracs[:m], 400)); err != nil {
		log.Fatal(err)
	}
	res, err := eng.Infer(ctx, lia.LogRates(fracs[m], 400))
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("inferred congested links (loss > 1%):")
	found := false
	for k, q := range res.LossRates {
		if q > 0.01 {
			fmt.Printf("  virtual link %d: loss %.3f (variance %.2e, %d paths)\n",
				k, q, res.Variances[k], len(rm.PathsThrough(k)))
			found = true
		}
	}
	if !found {
		fmt.Println("  none this snapshot")
	}

	// Sanity: reconstruct each path's measured rate from the inferred links.
	var worst float64
	for i := 0; i < rm.NumPaths(); i++ {
		pred := 1.0
		for _, k := range rm.Row(i) {
			pred *= 1 - res.LossRates[k]
		}
		if d := math.Abs(pred - fracs[m][i]); d > worst {
			worst = d
		}
	}
	fmt.Printf("\nworst |measured − explained| over all paths: %.4f\n", worst)
}
