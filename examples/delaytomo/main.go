// Delaytomo: the Section 8 extension — link *delay* tomography with the
// same second-order machinery.
//
// Path excess delay is the sum of per-link queueing delays, so the linear
// model Y = R·X holds directly (no logarithms). Congested links have large
// delay variance; the variances are identifiable from path-delay
// covariances (the identical augmented-matrix argument), and eliminating
// quiet links yields the queueing delays of the congested ones.
//
//	go run ./examples/delaytomo
package main

import (
	"context"
	"fmt"
	"log"
	"math"
	"math/rand/v2"

	"lia"
	"lia/internal/topogen"
	"lia/internal/topology"
)

func main() {
	rng := rand.New(rand.NewPCG(11, 0))
	network := topogen.BarabasiAlbert(rng, 200, 2)
	hosts := topogen.SelectHosts(rng, network, 8)
	paths := topogen.Routes(network, hosts, hosts)
	paths, _ = topology.RemoveFluttering(paths)
	rm, err := lia.NewTopology(paths)
	if err != nil {
		log.Fatal(err)
	}

	// Ground truth: 10% of links congested with mean queueing delay 5–20 ms
	// re-drawn each snapshot; quiet links jitter below 0.1 ms.
	congested := make([]bool, rm.NumLinks())
	for k := range congested {
		congested[k] = rng.Float64() < 0.10
	}
	drawDelays := func() []float64 {
		d := make([]float64, rm.NumLinks())
		for k := range d {
			if congested[k] {
				d[k] = 5 + 15*rng.Float64() // ms
			} else {
				d[k] = 0.1 * rng.Float64()
			}
		}
		return d
	}
	pathDelay := func(d []float64, jitter float64) []float64 {
		y := make([]float64, rm.NumPaths())
		for i := range y {
			for _, k := range rm.Row(i) {
				y[i] += d[k]
			}
			y[i] += jitter * rng.NormFloat64() // measurement noise
		}
		return y
	}

	ctx := context.Background()
	eng, err := lia.NewEngine(rm, lia.WithObservation(lia.ObserveLinear))
	if err != nil {
		log.Fatal(err)
	}
	const m = 60
	for s := 0; s < m; s++ {
		if err := eng.Ingest(pathDelay(drawDelays(), 0.05)); err != nil {
			log.Fatal(err)
		}
	}
	truth := drawDelays()
	res, err := eng.Infer(ctx, pathDelay(truth, 0.05))
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("paths=%d links=%d kept=%d\n\n", rm.NumPaths(), rm.NumLinks(), len(res.Kept))
	fmt.Println("congested link   true delay(ms)  inferred(ms)  variance")
	var maxErr float64
	for k := range congested {
		if !congested[k] {
			continue
		}
		fmt.Printf("%14d   %12.2f  %12.2f  %8.1f\n", k, truth[k], res.LossRates[k], res.Variances[k])
		if e := math.Abs(truth[k] - res.LossRates[k]); e > maxErr {
			maxErr = e
		}
	}
	fmt.Printf("\nworst congested-link delay error: %.2f ms\n", maxErr)
}
