module lia

go 1.24
