package lia

import (
	"fmt"

	"lia/internal/core"
	"lia/internal/topology"
)

// Path is one end-to-end measurement path: an ordered sequence of physical
// (directed) link IDs from a beacon host to a destination host.
type Path = topology.Path

// RoutingMatrix is the reduced routing matrix R of the paper: np rows
// (paths) by nc columns (covered virtual links), produced by NewTopology.
// A RoutingMatrix is immutable after construction and safe for concurrent
// use.
type RoutingMatrix = topology.RoutingMatrix

// Result is the output of one Phase-2 inference; see Engine.Infer.
type Result = core.Result

// NewTopology builds the reduced routing matrix from a set of end-to-end
// paths: links that no measurement can tell apart are merged into virtual
// links (the alias reduction of §3.1) and uncovered links are dropped.
// Callers with possibly-fluttering path sets should run RemoveFluttering
// first; Theorem 1 guarantees identifiability only under assumption T.2.
func NewTopology(paths []Path) (*RoutingMatrix, error) {
	return topology.Build(paths)
}

// RemoveFluttering drops the minimum suffix of paths violating the
// no-route-fluttering assumption T.2 (two routes between the same host pair
// disagreeing on their links). It returns the kept paths and the indices of
// the removed ones (into the input slice).
func RemoveFluttering(paths []Path) (kept []Path, removed []int) {
	return topology.RemoveFluttering(paths)
}

// Partition is a routing matrix's decomposition into link-connected
// components — the exact unit of distribution: no covariance equation and no
// elimination decision ever couples two components, so estimates computed
// per component are the whole-matrix estimates by construction. ShardedEngine
// uses it to spread components across goroutines; the lia/cluster package
// uses the same decomposition (and its deterministic LPT Shards grouping) to
// place components across machines.
type Partition = topology.Partition

// Component is one link-connected component of a Partition: the global path
// (row) and virtual-link (column) indices it owns.
type Component = topology.Component

// NewPartition computes the link-connected components of the routing matrix.
// The decomposition is deterministic: components are numbered in order of
// their smallest path index, so every process that builds the same routing
// matrix computes the same partition — the property distributed placement
// relies on.
func NewPartition(rm *RoutingMatrix) *Partition {
	return topology.NewPartition(rm)
}

// Identifiable reports whether the per-link variances are statistically
// identifiable from end-to-end measurements on this routing matrix, i.e.
// whether the augmented matrix A of Definition 1 has full column rank
// (Lemma 2). The check costs a rank computation over an nc×nc Gram matrix
// plus one pass over the np(np+1)/2 path pairs.
func Identifiable(rm *RoutingMatrix) bool {
	return core.Identifiable(rm)
}

// AugmentedRank returns rank(A), the number of identifiable variance
// directions (Theorem 1 guarantees rank(A) = nc for topologies satisfying
// T.1 and T.2).
func AugmentedRank(rm *RoutingMatrix) int {
	return core.AugmentedRank(rm)
}

// VarGateAt estimates the snapshot-to-snapshot variance a link sitting
// exactly at the congestion threshold tl would exhibit when measured with
// the given number of probes; pass it to Result.CongestedGated to suppress
// one-snapshot false alarms on links the learning phase saw to be quiet.
func VarGateAt(tl float64, probes int) float64 {
	return core.VarGateAt(tl, probes)
}

// checkDim validates a snapshot vector against the routing matrix.
func checkDim(rm *RoutingMatrix, y []float64) error {
	if len(y) != rm.NumPaths() {
		return fmt.Errorf("lia: snapshot of %d paths, routing matrix has %d: %w",
			len(y), rm.NumPaths(), ErrDimensionMismatch)
	}
	return nil
}
