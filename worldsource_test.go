package lia_test

// worldsource_test.go covers lia.WorldSource against an in-process world
// server: stream conversion (LogRates + virtual-link truth), attach-resume
// across consumers, lag accounting, and reconnect-through-RetrySource via
// a connection-dropping proxy.

import (
	"context"
	"io"
	"math"
	"net"
	"sync"
	"testing"
	"time"

	"lia"
	"lia/world"
)

// worldTestPaths is the standard 6-path probing tree used across the repo's
// tests: beacon side links 1..3, destination side links 4..9.
func worldTestPaths() []lia.Path {
	return []lia.Path{
		{Beacon: 0, Dst: 4, Links: []int{1, 4}},
		{Beacon: 0, Dst: 5, Links: []int{1, 5}},
		{Beacon: 0, Dst: 6, Links: []int{2, 6}},
		{Beacon: 0, Dst: 7, Links: []int{2, 7}},
		{Beacon: 0, Dst: 8, Links: []int{3, 8}},
		{Beacon: 0, Dst: 9, Links: []int{3, 9}},
	}
}

func startWorldServer(t *testing.T, cfg world.ServerConfig) *world.Server {
	t.Helper()
	s := world.NewServer(cfg)
	if err := s.Listen("127.0.0.1:0"); err != nil {
		t.Fatalf("listen: %v", err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

// TestWorldSourceStreams checks the conversion end to end: Y is the log
// transmission rate of the world's path fractions, and Truth folds the
// per-physical-link regime into virtual-link loss rates.
func TestWorldSourceStreams(t *testing.T) {
	rm, err := lia.NewTopology(worldTestPaths())
	if err != nil {
		t.Fatal(err)
	}
	srv := startWorldServer(t, world.ServerConfig{
		World: world.Config{Seed: 11},
		Schedule: []world.Event{
			// Permanent 8x congest on shared link 1 from tick 0: paths 0 and
			// 1 lose together, and their virtual links carry truth > 0.
			{Kind: world.KindCongest, Tick: 0, Links: []int{1}, Factor: 8},
		},
	})
	src := lia.NewWorldSource(srv.Addr(), rm, lia.WorldConfig{Batch: 4})
	defer src.Close()

	// A reference client on a *separate scenario* with identical paths and
	// seed replays the same stream — the determinism contract lets us check
	// the conversion value-for-value.
	ref, err := world.Dial(srv.Addr(), time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer ref.Close()
	paths := make([][]int, rm.NumPaths())
	for i := range paths {
		paths[i] = rm.Path(i).Links
	}
	if _, err := ref.Assign("reference", paths, 0); err != nil {
		t.Fatal(err)
	}
	refBatch, _, err := ref.Next("reference", 8)
	if err != nil {
		t.Fatal(err)
	}

	ctx := context.Background()
	vlink1, ok := rm.VirtualOf(1)
	if !ok {
		t.Fatal("physical link 1 has no virtual link")
	}
	for i := 0; i < 8; i++ {
		snap, err := src.Next(ctx)
		if err != nil {
			t.Fatalf("snapshot %d: %v", i, err)
		}
		if len(snap.Y) != rm.NumPaths() || len(snap.Truth) != rm.NumLinks() {
			t.Fatalf("snapshot %d dims: %d paths, %d truth", i, len(snap.Y), len(snap.Truth))
		}
		wantY := lia.LogRates(refBatch[i].Frac, 0)
		for p := range wantY {
			if math.Float64bits(snap.Y[p]) != math.Float64bits(wantY[p]) {
				t.Fatalf("snapshot %d path %d: Y=%v, want LogRates of replay %v",
					i, p, snap.Y[p], wantY[p])
			}
		}
		if snap.Truth[vlink1] <= 0 {
			t.Fatalf("snapshot %d: truth for congested virtual link %d = %g, want > 0",
				i, vlink1, snap.Truth[vlink1])
		}
	}
}

// TestWorldSourceAttachResumeAndLag checks that a second consumer attaching
// to the same scenario resumes at the current tick, and that WorldLag
// tracks generated-but-undelivered snapshots.
func TestWorldSourceAttachResumeAndLag(t *testing.T) {
	rm, err := lia.NewTopology(worldTestPaths())
	if err != nil {
		t.Fatal(err)
	}
	srv := startWorldServer(t, world.ServerConfig{World: world.Config{Seed: 4}})
	ctx := context.Background()

	ws := lia.NewWorldSource(srv.Addr(), rm, lia.WorldConfig{Scenario: "shared", Batch: 4})
	if lag := ws.WorldLag(); lag != 0 {
		t.Fatalf("lag before first pull = %d", lag)
	}
	if _, err := ws.Next(ctx); err != nil {
		t.Fatal(err)
	}
	// One pull of 4 delivered 1: three generated snapshots are buffered.
	if lag := ws.WorldLag(); lag != 3 {
		t.Fatalf("lag after delivering 1 of 4 = %d, want 3", lag)
	}
	for i := 0; i < 3; i++ {
		if _, err := ws.Next(ctx); err != nil {
			t.Fatal(err)
		}
	}
	if lag := ws.WorldLag(); lag != 0 {
		t.Fatalf("lag after draining the batch = %d, want 0", lag)
	}
	if err := ws.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := ws.Next(ctx); err == nil {
		t.Fatal("Next after Close succeeded")
	}

	// A new source on the same scenario resumes at tick 4, not 0 — the
	// supervised-restart contract.
	ws2 := lia.NewWorldSource(srv.Addr(), rm, lia.WorldConfig{Scenario: "shared", Batch: 1})
	defer ws2.Close()
	if _, err := ws2.Next(ctx); err != nil {
		t.Fatal(err)
	}
	ctl, err := world.Dial(srv.Addr(), time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer ctl.Close()
	st, err := ctl.Stats("shared")
	if err != nil {
		t.Fatal(err)
	}
	if st.Tick != 5 {
		t.Fatalf("world at tick %d after 4 + 1 pulls, want 5 (resume, not restart)", st.Tick)
	}
}

// dropProxy forwards TCP to a backend and can sever every active
// connection on demand — a stand-in for network partitions.
type dropProxy struct {
	ln      net.Listener
	backend string
	mu      sync.Mutex
	conns   []net.Conn
}

func newDropProxy(t *testing.T, backend string) *dropProxy {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	p := &dropProxy{ln: ln, backend: backend}
	t.Cleanup(func() { ln.Close(); p.drop() })
	go p.accept()
	return p
}

func (p *dropProxy) accept() {
	for {
		c, err := p.ln.Accept()
		if err != nil {
			return
		}
		b, err := net.Dial("tcp", p.backend)
		if err != nil {
			c.Close()
			continue
		}
		p.mu.Lock()
		p.conns = append(p.conns, c, b)
		p.mu.Unlock()
		go func() { io.Copy(b, c); b.Close(); c.Close() }()
		go func() { io.Copy(c, b); b.Close(); c.Close() }()
	}
}

// drop severs every proxied connection.
func (p *dropProxy) drop() {
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, c := range p.conns {
		c.Close()
	}
	p.conns = nil
}

// TestWorldSourceReconnects drops the connection mid-stream and checks that
// RetrySource(WorldSource) rides it out, resuming the scenario where it was
// instead of replaying from tick 0.
func TestWorldSourceReconnects(t *testing.T) {
	rm, err := lia.NewTopology(worldTestPaths())
	if err != nil {
		t.Fatal(err)
	}
	srv := startWorldServer(t, world.ServerConfig{World: world.Config{Seed: 21}})
	proxy := newDropProxy(t, srv.Addr())

	ws := lia.NewWorldSource(proxy.ln.Addr().String(), rm, lia.WorldConfig{Batch: 2})
	src := lia.RetrySource(ws, lia.RetryPolicy{
		MaxAttempts: 5, InitialBackoff: time.Millisecond, Seed: 1,
	})
	defer lia.CloseSource(src)
	ctx := context.Background()
	for i := 0; i < 4; i++ {
		if _, err := src.Next(ctx); err != nil {
			t.Fatalf("pre-drop snapshot %d: %v", i, err)
		}
	}
	proxy.drop()
	// The next pulls must succeed through redial + re-assign.
	for i := 0; i < 4; i++ {
		if _, err := src.Next(ctx); err != nil {
			t.Fatalf("post-drop snapshot %d: %v", i, err)
		}
	}
	ctl, err := world.Dial(srv.Addr(), time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer ctl.Close()
	st, err := ctl.Stats("")
	if err != nil {
		t.Fatal(err)
	}
	if st.Tick != 8 {
		t.Fatalf("world at tick %d after 8 snapshots across a reconnect, want 8", st.Tick)
	}
}
