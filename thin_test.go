package lia_test

// thin_test.go covers ThinSource: seeded-deterministic Bernoulli thinning,
// stride sampling, the divisor-aware Stats correction (Rahman et al.,
// arXiv:2008.13424), and composition with the other source combinators.

import (
	"context"
	"errors"
	"io"
	"math"
	"testing"

	"lia"
)

// indexed builds ys whose single entry encodes the snapshot index, so kept
// sets are directly comparable.
func indexed(n int) [][]float64 {
	ys := make([][]float64, n)
	for i := range ys {
		ys[i] = []float64{-float64(i)}
	}
	return ys
}

// keptIndices drains a thinner and returns the original indices it kept.
func keptIndices(t *testing.T, src lia.SnapshotSource) []int {
	t.Helper()
	ctx := context.Background()
	var out []int
	for {
		snap, err := src.Next(ctx)
		if errors.Is(err, io.EOF) {
			return out
		}
		if err != nil {
			t.Fatalf("next: %v", err)
		}
		out = append(out, int(-snap.Y[0]))
	}
}

func TestThinSourceDeterministicKeepSet(t *testing.T) {
	const n = 400
	cfg := lia.ThinConfig{Keep: 0.3, Seed: 42}
	a := keptIndices(t, lia.ThinSource(lia.NewSliceSource(indexed(n)), cfg))
	b := keptIndices(t, lia.ThinSource(lia.NewSliceSource(indexed(n)), cfg))
	if len(a) == 0 || len(a) == n {
		t.Fatalf("kept %d of %d at Keep=0.3 — thinning is not happening", len(a), n)
	}
	for i := range a {
		if i >= len(b) || a[i] != b[i] {
			t.Fatalf("same seed kept different sets: %v vs %v", a, b)
		}
	}
	c := keptIndices(t, lia.ThinSource(lia.NewSliceSource(indexed(n)),
		lia.ThinConfig{Keep: 0.3, Seed: 43}))
	same := len(c) == len(a)
	if same {
		for i := range a {
			if a[i] != c[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("different seeds kept identical sets")
	}
}

func TestThinSourceStride(t *testing.T) {
	got := keptIndices(t, lia.ThinSource(lia.NewSliceSource(indexed(10)),
		lia.ThinConfig{Every: 3}))
	want := []int{0, 3, 6, 9}
	if len(got) != len(want) {
		t.Fatalf("stride kept %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("stride kept %v, want %v", got, want)
		}
	}
}

func TestThinStatsDivisorCorrection(t *testing.T) {
	const n = 2000
	src := lia.ThinSource(lia.NewSliceSource(indexed(n)), lia.ThinConfig{Keep: 0.25, Seed: 7})
	kept := len(keptIndices(t, src))
	st := src.Stats()
	if st.Offered != n || st.Kept != uint64(kept) || st.Thinned != n-uint64(kept) {
		t.Fatalf("stats = %+v with %d kept", st, kept)
	}
	if math.Abs(st.KeepRate-0.25) > 0.05 {
		t.Fatalf("realized keep rate %g far from 0.25", st.KeepRate)
	}
	wantDiv := float64(n) / float64(kept)
	if st.DivisorCorrection != wantDiv {
		t.Fatalf("divisor correction %g, want Offered/Kept = %g", st.DivisorCorrection, wantDiv)
	}
	// No thinning => unit divisor and a pass-through stream.
	full := lia.ThinSource(lia.NewSliceSource(indexed(5)), lia.ThinConfig{})
	if got := keptIndices(t, full); len(got) != 5 {
		t.Fatalf("Keep=0 (no thinning) kept %d of 5", len(got))
	}
	if st := full.Stats(); st.DivisorCorrection != 1 || st.KeepRate != 1 {
		t.Fatalf("unthinned stats = %+v, want unit rate and divisor", st)
	}
}

func TestThinSourceComposes(t *testing.T) {
	// counting-style chain: sanitize(thin(retry(raw))) — errors and EOF
	// pass through, Close reaches the bottom.
	inner := &closeRecorder{SnapshotSource: lia.NewSliceSource(indexed(20))}
	src := lia.SanitizeSource(
		lia.ThinSource(
			lia.RetrySource(inner, lia.RetryPolicy{}),
			lia.ThinConfig{Every: 2},
		), lia.SanitizeConfig{Dim: 1})
	got := keptIndices(t, src)
	if len(got) != 10 {
		t.Fatalf("composed chain kept %d of 20 at Every=2", len(got))
	}
	if err := lia.CloseSource(src); err != nil {
		t.Fatal(err)
	}
	if !inner.closed {
		t.Fatal("Close did not propagate through thin to the wrapped source")
	}
}
