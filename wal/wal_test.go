package wal

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"testing"
	"time"
)

func mustOpen(t *testing.T, dir string, opts Options) *Log {
	t.Helper()
	l, err := Open(dir, opts)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return l
}

func collect(t *testing.T, l *Log, from uint64) map[uint64][]byte {
	t.Helper()
	got := map[uint64][]byte{}
	err := l.Replay(from, func(seq uint64, payload []byte) error {
		got[seq] = append([]byte(nil), payload...)
		return nil
	})
	if err != nil {
		t.Fatalf("Replay: %v", err)
	}
	return got
}

func payload(seq uint64, size int) []byte {
	p := bytes.Repeat([]byte{byte(seq)}, size)
	copy(p, fmt.Sprintf("rec-%d|", seq))
	return p
}

func TestAppendReplayRoundTrip(t *testing.T) {
	dir := t.TempDir()
	l := mustOpen(t, dir, Options{})
	for seq := uint64(1); seq <= 50; seq++ {
		if err := l.Append(seq, payload(seq, 100)); err != nil {
			t.Fatalf("Append %d: %v", seq, err)
		}
	}
	if l.LastSeq() != 50 || l.Appended() != 50 {
		t.Fatalf("LastSeq=%d Appended=%d", l.LastSeq(), l.Appended())
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	r := mustOpen(t, dir, Options{})
	if r.LastSeq() != 50 {
		t.Fatalf("reopened LastSeq = %d", r.LastSeq())
	}
	got := collect(t, r, 0)
	if len(got) != 50 {
		t.Fatalf("replayed %d records", len(got))
	}
	for seq := uint64(1); seq <= 50; seq++ {
		if !bytes.Equal(got[seq], payload(seq, 100)) {
			t.Fatalf("record %d corrupted", seq)
		}
	}
	// Appending after replay continues the sequence.
	if err := r.Append(51, payload(51, 100)); err != nil {
		t.Fatalf("Append after replay: %v", err)
	}
	r.Close()
}

func TestReplayFrom(t *testing.T) {
	dir := t.TempDir()
	l := mustOpen(t, dir, Options{})
	for seq := uint64(1); seq <= 20; seq++ {
		if err := l.Append(seq, payload(seq, 10)); err != nil {
			t.Fatal(err)
		}
	}
	l.Close()
	r := mustOpen(t, dir, Options{})
	got := collect(t, r, 15)
	if len(got) != 6 {
		t.Fatalf("replayed %d records from 15, want 6", len(got))
	}
	for seq := uint64(15); seq <= 20; seq++ {
		if got[seq] == nil {
			t.Fatalf("missing record %d", seq)
		}
	}
	r.Close()
}

func TestSegmentRotationAndTruncate(t *testing.T) {
	dir := t.TempDir()
	// Small segments: each holds ~4 records of 100 bytes.
	l := mustOpen(t, dir, Options{SegmentBytes: 500, Policy: SyncOff})
	for seq := uint64(1); seq <= 40; seq++ {
		if err := l.Append(seq, payload(seq, 100)); err != nil {
			t.Fatal(err)
		}
	}
	if l.Segments() < 5 {
		t.Fatalf("expected many segments, got %d", l.Segments())
	}
	before := l.Bytes()
	if err := l.TruncateBefore(30); err != nil {
		t.Fatalf("TruncateBefore: %v", err)
	}
	if l.Bytes() >= before {
		t.Fatalf("truncation freed nothing: %d -> %d", before, l.Bytes())
	}
	l.Close()

	// Records ≥ 30 must all survive truncation; some < 30 may too (whole
	// segments only).
	r := mustOpen(t, dir, Options{})
	got := collect(t, r, 30)
	for seq := uint64(30); seq <= 40; seq++ {
		if !bytes.Equal(got[seq], payload(seq, 100)) {
			t.Fatalf("record %d lost by truncation", seq)
		}
	}
	r.Close()
}

// TestTornTailTruncated simulates a crash mid-append: a trailing partial
// frame must be dropped at open and not break subsequent appends or replay.
func TestTornTailTruncated(t *testing.T) {
	for _, cut := range []int{1, 5, 13, 50} {
		dir := t.TempDir()
		l := mustOpen(t, dir, Options{})
		for seq := uint64(1); seq <= 5; seq++ {
			if err := l.Append(seq, payload(seq, 64)); err != nil {
				t.Fatal(err)
			}
		}
		l.Close()
		segs, _ := filepath.Glob(filepath.Join(dir, "wal-*.seg"))
		if len(segs) != 1 {
			t.Fatalf("segments: %v", segs)
		}
		// Hand-write a torn record: a full frame minus `cut` bytes.
		f, err := os.OpenFile(segs[0], os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			t.Fatal(err)
		}
		frame := frameFor(6, payload(6, 64))
		if _, err := f.Write(frame[:len(frame)-cut]); err != nil {
			t.Fatal(err)
		}
		f.Close()

		r := mustOpen(t, dir, Options{})
		if r.LastSeq() != 5 {
			t.Fatalf("cut %d: LastSeq=%d, want 5 (torn record dropped)", cut, r.LastSeq())
		}
		got := collect(t, r, 0)
		if len(got) != 5 {
			t.Fatalf("cut %d: replayed %d", cut, len(got))
		}
		if err := r.Append(6, payload(6, 64)); err != nil {
			t.Fatalf("cut %d: append after torn tail: %v", cut, err)
		}
		r.Close()
		rr := mustOpen(t, dir, Options{})
		if rr.LastSeq() != 6 {
			t.Fatalf("cut %d: re-appended record lost", cut)
		}
		rr.Close()
	}
}

// frameFor builds one record frame by hand, mirroring Append's layout.
func frameFor(seq uint64, p []byte) []byte {
	buf := make([]byte, 0, len(p)+frameOverhead)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(p)))
	buf = binary.LittleEndian.AppendUint64(buf, seq)
	buf = append(buf, p...)
	return binary.LittleEndian.AppendUint32(buf, crc32.ChecksumIEEE(buf[4:]))
}

// TestCorruptSealedSegment flips a byte inside a sealed (non-final) segment
// and expects Replay to surface ErrCorrupt after the valid prefix.
func TestCorruptSealedSegment(t *testing.T) {
	dir := t.TempDir()
	l := mustOpen(t, dir, Options{SegmentBytes: 400, Policy: SyncOff})
	for seq := uint64(1); seq <= 20; seq++ {
		if err := l.Append(seq, payload(seq, 80)); err != nil {
			t.Fatal(err)
		}
	}
	if l.Segments() < 3 {
		t.Fatalf("need ≥3 segments, got %d", l.Segments())
	}
	l.Close()
	segs, _ := filepath.Glob(filepath.Join(dir, "wal-*.seg"))
	if len(segs) < 3 {
		t.Fatal("segment files missing")
	}
	data, err := os.ReadFile(segs[0])
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0xFF
	if err := os.WriteFile(segs[0], data, 0o644); err != nil {
		t.Fatal(err)
	}

	r := mustOpen(t, dir, Options{})
	err = r.Replay(0, func(uint64, []byte) error { return nil })
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Replay of holed log: %v, want ErrCorrupt", err)
	}
	r.Close()
}

func TestEmptyDirAndNonMonotonicSeq(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "fresh")
	l := mustOpen(t, dir, Options{})
	if l.LastSeq() != 0 || l.Bytes() != 0 || l.Segments() != 0 {
		t.Fatalf("fresh log not empty: %d %d %d", l.LastSeq(), l.Bytes(), l.Segments())
	}
	if got := collect(t, l, 0); len(got) != 0 {
		t.Fatalf("fresh replay returned %d records", len(got))
	}
	if err := l.Append(7, payload(7, 8)); err != nil {
		t.Fatal(err)
	}
	if err := l.Append(7, payload(7, 8)); err == nil {
		t.Fatal("duplicate seq accepted")
	}
	if err := l.Append(3, payload(3, 8)); err == nil {
		t.Fatal("backwards seq accepted")
	}
	if err := l.Append(0, payload(1, 8)); err == nil {
		t.Fatal("zero seq accepted")
	}
	l.Close()
}

func TestSyncPolicies(t *testing.T) {
	for _, pol := range []SyncPolicy{SyncBatch, SyncInterval, SyncOff} {
		dir := t.TempDir()
		l := mustOpen(t, dir, Options{Policy: pol, SyncEvery: time.Millisecond})
		for seq := uint64(1); seq <= 10; seq++ {
			if err := l.Append(seq, payload(seq, 32)); err != nil {
				t.Fatalf("%v: %v", pol, err)
			}
		}
		// Abandon without Close: data must still be visible to a reader
		// because appends write straight through to the file.
		r := mustOpen(t, dir, Options{})
		if got := collect(t, r, 0); len(got) != 10 {
			t.Fatalf("%v: abandoned log replayed %d records", pol, len(got))
		}
		r.Close()
	}
}

func TestParseSyncPolicy(t *testing.T) {
	for s, want := range map[string]SyncPolicy{"batch": SyncBatch, "interval": SyncInterval, "off": SyncOff} {
		got, err := ParseSyncPolicy(s)
		if err != nil || got != want {
			t.Fatalf("ParseSyncPolicy(%q) = %v, %v", s, got, err)
		}
		if got.String() != s {
			t.Fatalf("String() = %q, want %q", got.String(), s)
		}
	}
	if _, err := ParseSyncPolicy("always"); err == nil {
		t.Fatal("bad policy accepted")
	}
}
