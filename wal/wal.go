// Package wal implements the segmented, CRC-framed write-ahead log behind
// lia's durability layer (lia.WithDurability). The contract is simple:
// payloads appended under monotonically increasing sequence numbers land in
// numbered segment files, survive a crash up to the configured fsync policy,
// and replay in order on reopen — stopping cleanly at a torn tail so a
// half-written final record (the signature of SIGKILL mid-append) never
// poisons recovery.
//
// The log never buffers records in user space: every Append is one write(2)
// on the segment file, so data acknowledged to the caller is visible to any
// subsequent reader of the directory even if the process is killed before
// the next fsync (the OS page cache survives the process; only a machine
// crash can lose un-synced records). That property is what makes in-process
// crash simulation in tests equivalent to a real SIGKILL.
//
// On-disk format: each segment starts with an 8-byte magic ("LIAWAL01")
// followed by records framed as
//
//	u32 payloadLen | u64 seq | payload | u32 crc32(IEEE, seq+payload)
//
// with all integers little-endian. Segment files are named
// wal-<first-seq>.seg; a record lives in the last segment whose first
// sequence number is ≤ its own, which makes truncation a pure unlink.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"
)

// SyncPolicy selects when Append calls fsync on the active segment.
type SyncPolicy int

const (
	// SyncBatch fsyncs after every append: no acknowledged record is ever
	// lost, at the cost of one fsync per batch.
	SyncBatch SyncPolicy = iota
	// SyncInterval fsyncs at most once per Options.SyncEvery, bounding both
	// the fsync rate and the window of acknowledged records a machine crash
	// can lose. A process crash (SIGKILL) loses nothing under any policy.
	SyncInterval
	// SyncOff never fsyncs; the OS flushes on its own schedule.
	SyncOff
)

func (p SyncPolicy) String() string {
	switch p {
	case SyncBatch:
		return "batch"
	case SyncInterval:
		return "interval"
	case SyncOff:
		return "off"
	default:
		return fmt.Sprintf("SyncPolicy(%d)", int(p))
	}
}

// ParseSyncPolicy converts the flag spellings "batch", "interval", "off".
func ParseSyncPolicy(s string) (SyncPolicy, error) {
	switch s {
	case "batch":
		return SyncBatch, nil
	case "interval":
		return SyncInterval, nil
	case "off":
		return SyncOff, nil
	default:
		return 0, fmt.Errorf("wal: unknown sync policy %q (want batch, interval or off)", s)
	}
}

// Options configures a Log. The zero value is valid: per-batch fsync,
// 64 MiB segments.
type Options struct {
	// SegmentBytes rotates to a fresh segment once the active one would
	// exceed this size. Default 64 MiB.
	SegmentBytes int64
	// Policy is the fsync policy (default SyncBatch).
	Policy SyncPolicy
	// SyncEvery is the SyncInterval cadence (default 100ms).
	SyncEvery time.Duration
}

const (
	segMagic        = "LIAWAL01"
	frameOverhead   = 4 + 8 + 4 // len + seq + crc
	defaultSegBytes = 64 << 20
	defaultSyncEvry = 100 * time.Millisecond
	maxPayload      = 1 << 30
)

// ErrCorrupt reports an invalid record in a sealed (non-final) segment — a
// hole that cannot be attributed to a torn tail write. Replay returns it
// wrapped; callers decide whether the already-replayed prefix is usable.
var ErrCorrupt = errors.New("wal: corrupt log")

// Log is an append-only write-ahead log over a directory of segment files.
// Methods are not safe for concurrent use; callers serialise externally
// (lia's durability layer holds its ingest lock across Append).
type Log struct {
	dir  string
	opts Options

	segs     []segment // sealed + active segments, ascending by first seq
	active   *os.File  // nil until the first Append
	appended uint64    // records appended this process lifetime
	lastSeq  uint64    // highest sequence number in the log (0 = empty)
	lastSync time.Time
	dirty    bool // writes since the last fsync
	replayed bool // Replay already ran
	scratch  []byte
}

type segment struct {
	path  string
	first uint64 // first sequence number the segment holds
	size  int64
}

// Open opens (creating if necessary) the log directory, validates the tail
// of the newest segment, and truncates a torn final record so appends resume
// from the last durable frame. Call Replay before the first Append to
// consume pre-existing records.
func Open(dir string, opts Options) (*Log, error) {
	if opts.SegmentBytes <= 0 {
		opts.SegmentBytes = defaultSegBytes
	}
	if opts.SyncEvery <= 0 {
		opts.SyncEvery = defaultSyncEvry
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("wal: open: %w", err)
	}
	l := &Log{dir: dir, opts: opts}
	if err := l.scan(); err != nil {
		return nil, err
	}
	return l, nil
}

func segFirst(name string) (uint64, bool) {
	if !strings.HasPrefix(name, "wal-") || !strings.HasSuffix(name, ".seg") {
		return 0, false
	}
	var first uint64
	if _, err := fmt.Sscanf(name, "wal-%020d.seg", &first); err != nil {
		return 0, false
	}
	return first, true
}

func segName(first uint64) string { return fmt.Sprintf("wal-%020d.seg", first) }

// scan lists the segments, walks the newest one to find the durable tail,
// and truncates any torn final record. A tail segment left with no complete
// records (e.g. killed during creation) is removed outright.
func (l *Log) scan() error {
	entries, err := os.ReadDir(l.dir)
	if err != nil {
		return fmt.Errorf("wal: scan: %w", err)
	}
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		first, ok := segFirst(e.Name())
		if !ok {
			continue
		}
		info, err := e.Info()
		if err != nil {
			return fmt.Errorf("wal: scan: %w", err)
		}
		l.segs = append(l.segs, segment{path: filepath.Join(l.dir, e.Name()), first: first, size: info.Size()})
	}
	sort.Slice(l.segs, func(i, j int) bool { return l.segs[i].first < l.segs[j].first })
	for len(l.segs) > 0 {
		// Only the newest segment can have a torn tail; older ones were
		// sealed by rotation. Walk it to the last valid frame, truncate
		// after it, and drop it entirely if nothing valid remains.
		tail := &l.segs[len(l.segs)-1]
		end, last, err := scanSegment(tail.path, nil)
		if err != nil {
			return err
		}
		if end < tail.size {
			if err := os.Truncate(tail.path, end); err != nil {
				return fmt.Errorf("wal: truncate torn tail: %w", err)
			}
			tail.size = end
		}
		if last > 0 {
			l.lastSeq = last
			return nil
		}
		if err := os.Remove(tail.path); err != nil {
			return fmt.Errorf("wal: remove empty segment: %w", err)
		}
		l.segs = l.segs[:len(l.segs)-1]
	}
	return nil
}

// scanSegment walks one segment, calling fn (when non-nil) for each valid
// record, and returns the byte offset just past the last valid record plus
// the last valid sequence number. The walk stops at the first invalid frame;
// distinguishing bit-rot from a torn write is impossible in general, so the
// caller classifies by comparing end with the file size and the segment's
// position in the log.
func scanSegment(path string, fn func(seq uint64, payload []byte) error) (end int64, last uint64, err error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return 0, 0, fmt.Errorf("wal: read segment: %w", err)
	}
	if len(data) < len(segMagic) || string(data[:len(segMagic)]) != segMagic {
		return 0, 0, nil
	}
	off := int64(len(segMagic))
	rest := data[len(segMagic):]
	for len(rest) >= frameOverhead {
		plen := int(binary.LittleEndian.Uint32(rest))
		if plen <= 0 || plen > maxPayload || len(rest) < frameOverhead+plen {
			break
		}
		seq := binary.LittleEndian.Uint64(rest[4:])
		payload := rest[12 : 12+plen]
		want := binary.LittleEndian.Uint32(rest[12+plen:])
		if crc32.ChecksumIEEE(rest[4:12+plen]) != want {
			break
		}
		if fn != nil {
			if err := fn(seq, payload); err != nil {
				return off, last, err
			}
		}
		last = seq
		off += int64(frameOverhead + plen)
		rest = rest[frameOverhead+plen:]
	}
	return off, last, nil
}

// Replay streams every record with seq ≥ from, in order, to fn. It must be
// called before the first Append. A torn tail ends replay silently (those
// bytes were already truncated at Open); an invalid record in a sealed
// (non-final) segment returns ErrCorrupt after replaying the prefix.
func (l *Log) Replay(from uint64, fn func(seq uint64, payload []byte) error) error {
	if l.replayed {
		return errors.New("wal: Replay called twice")
	}
	if l.active != nil {
		return errors.New("wal: Replay after Append")
	}
	l.replayed = true
	for i, seg := range l.segs {
		// Skip segments wholly below the replay point: every record in
		// segment i has seq below the next segment's first.
		if i+1 < len(l.segs) && l.segs[i+1].first <= from {
			continue
		}
		end, _, err := scanSegment(seg.path, func(seq uint64, payload []byte) error {
			if seq < from {
				return nil
			}
			return fn(seq, payload)
		})
		if err != nil {
			return err
		}
		if i < len(l.segs)-1 && end < seg.size {
			return fmt.Errorf("%w: invalid record in sealed segment %s at offset %d", ErrCorrupt, filepath.Base(seg.path), end)
		}
	}
	return nil
}

// Append frames payload under seq and writes it to the active segment,
// rotating first when the segment is full, then applies the fsync policy.
// seq must exceed every previously appended sequence number.
func (l *Log) Append(seq uint64, payload []byte) error {
	if len(payload) == 0 || len(payload) > maxPayload {
		return fmt.Errorf("wal: payload size %d out of range", len(payload))
	}
	if seq <= l.lastSeq {
		return fmt.Errorf("wal: non-monotonic append: seq %d after %d", seq, l.lastSeq)
	}
	need := int64(frameOverhead + len(payload))
	if l.active == nil || l.segBytes()+need > l.opts.SegmentBytes {
		if err := l.rotate(seq); err != nil {
			return err
		}
	}
	l.scratch = l.scratch[:0]
	l.scratch = binary.LittleEndian.AppendUint32(l.scratch, uint32(len(payload)))
	l.scratch = binary.LittleEndian.AppendUint64(l.scratch, seq)
	l.scratch = append(l.scratch, payload...)
	l.scratch = binary.LittleEndian.AppendUint32(l.scratch, crc32.ChecksumIEEE(l.scratch[4:]))
	if _, err := l.active.Write(l.scratch); err != nil {
		return fmt.Errorf("wal: append: %w", err)
	}
	l.segs[len(l.segs)-1].size += need
	l.lastSeq = seq
	l.appended++
	l.dirty = true
	switch l.opts.Policy {
	case SyncBatch:
		return l.Sync()
	case SyncInterval:
		if time.Since(l.lastSync) >= l.opts.SyncEvery {
			return l.Sync()
		}
	}
	return nil
}

func (l *Log) segBytes() int64 {
	if len(l.segs) == 0 {
		return 0
	}
	return l.segs[len(l.segs)-1].size
}

// rotate makes a segment writable for an append whose first record is seq:
// on a fresh open it reopens the newest existing segment if that still has
// room, otherwise it seals the active segment (fsync + close) and creates a
// new one named after seq.
func (l *Log) rotate(seq uint64) error {
	if l.active != nil {
		if err := l.Sync(); err != nil {
			return err
		}
		if err := l.active.Close(); err != nil {
			return fmt.Errorf("wal: seal segment: %w", err)
		}
		l.active = nil
	} else if len(l.segs) > 0 {
		tail := &l.segs[len(l.segs)-1]
		if tail.size+frameOverhead < l.opts.SegmentBytes {
			f, err := os.OpenFile(tail.path, os.O_WRONLY|os.O_APPEND, 0o644)
			if err != nil {
				return fmt.Errorf("wal: reopen segment: %w", err)
			}
			l.active = f
			return nil
		}
	}
	path := filepath.Join(l.dir, segName(seq))
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return fmt.Errorf("wal: create segment: %w", err)
	}
	if _, err := f.Write([]byte(segMagic)); err != nil {
		f.Close()
		return fmt.Errorf("wal: create segment: %w", err)
	}
	l.active = f
	l.segs = append(l.segs, segment{path: path, first: seq, size: int64(len(segMagic))})
	return nil
}

// Sync flushes the active segment to stable storage.
func (l *Log) Sync() error {
	l.lastSync = time.Now()
	if l.active == nil || !l.dirty {
		return nil
	}
	l.dirty = false
	if err := l.active.Sync(); err != nil {
		return fmt.Errorf("wal: sync: %w", err)
	}
	return nil
}

// TruncateBefore unlinks every sealed segment all of whose records have
// seq < cutoff — called once a checkpoint durably covers those records. The
// newest segment is never removed.
func (l *Log) TruncateBefore(cutoff uint64) error {
	removed := 0
	for removed < len(l.segs)-1 && l.segs[removed+1].first <= cutoff {
		if err := os.Remove(l.segs[removed].path); err != nil && !os.IsNotExist(err) {
			return fmt.Errorf("wal: truncate: %w", err)
		}
		removed++
	}
	if removed > 0 {
		l.segs = append(l.segs[:0], l.segs[removed:]...)
	}
	return nil
}

// Bytes returns the total size of all segment files.
func (l *Log) Bytes() int64 {
	var n int64
	for _, s := range l.segs {
		n += s.size
	}
	return n
}

// Segments returns the number of segment files backing the log.
func (l *Log) Segments() int { return len(l.segs) }

// LastSeq returns the highest sequence number in the log (0 when empty).
func (l *Log) LastSeq() uint64 { return l.lastSeq }

// Appended returns the number of records appended this process lifetime.
func (l *Log) Appended() uint64 { return l.appended }

// Close syncs and closes the active segment. The log must not be used after.
func (l *Log) Close() error {
	if l.active == nil {
		return nil
	}
	err := l.Sync()
	if cerr := l.active.Close(); err == nil {
		err = cerr
	}
	l.active = nil
	return err
}

var _ io.Closer = (*Log)(nil)
