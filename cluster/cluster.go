// Package cluster scales liaserve horizontally: one coordinator process
// places the link-connected components of a routing matrix (lia.Partition)
// across N registered liaserve nodes, scatters every incoming snapshot's
// per-component projection to the owning node over a persistent streaming
// ingest connection, and serves the full single-process API by gathering
// Infer/Steady/Stats across the fleet back into global link order.
//
// The decomposition is the same one lia.ShardedEngine exploits in-process:
// no covariance equation and no elimination decision couples two
// components, so a node running a plain engine per assigned component
// produces estimates bitwise-identical to a single lia.New engine fed the
// same snapshots — the cluster changes where the arithmetic runs, never its
// result. Placement is the deterministic LPT grouping of Partition.Shards
// applied to the node IDs in sorted order, so the same topology and the
// same node set always yield the same placement regardless of join order.
//
// The fleet degrades per component, mirroring ShardedEngine: a dead or
// degraded node marks only its own components' links Unresolved while every
// healthy component's estimates stay bitwise what they would be with no
// failure anywhere. The coordinator supervises one ingest stream and one
// epoch-watch stream per node, reconnecting with exponential backoff; a
// node that rejoins (same ID, any address) is re-assigned its components
// and resumes from the snapshots that arrive after it returns.
//
// Wire protocol (HTTP JSON + NDJSON streaming, dependency-free):
//
//	POST /cluster/v1/register   node -> coordinator: join the fleet
//	POST /cluster/v1/assign     coordinator -> node: component placement
//	POST /cluster/v1/ingest     coordinator -> node: NDJSON snapshot stream
//	POST /cluster/v1/infer      coordinator -> node: Phase-2 solve (scatter y)
//	GET  /cluster/v1/steady     coordinator -> node: steady-state gather
//	GET  /cluster/v1/stats      coordinator -> node: per-component counters
//	GET  /cluster/v1/watch      coordinator -> node: NDJSON epoch push stream
//
// Every payload is JSON; floats round-trip bit-exactly through Go's
// shortest-representation encoding, which is what makes gathered estimates
// bitwise-comparable to local ones.
package cluster

import (
	"errors"
	"fmt"

	"lia"
)

// PathDoc is one measurement path on the wire (the liainfer topology
// document schema).
type PathDoc struct {
	Beacon int   `json:"beacon"`
	Dst    int   `json:"dst"`
	Links  []int `json:"links"`
}

// EngineOptions is the wire form of the lia engine options a coordinator
// propagates to its nodes, so every per-component solver in the fleet is
// configured exactly like the single-process engine it must match bitwise.
type EngineOptions struct {
	// Strategy selects the Phase-2 elimination: "paper" (default) or
	// "greedy".
	Strategy string `json:"strategy,omitempty"`
	// Threshold is the congestion threshold tl; honored (verbatim,
	// including 0) only when ThresholdSet is true.
	Threshold    float64 `json:"threshold,omitempty"`
	ThresholdSet bool    `json:"threshold_set,omitempty"`
	// Window / Decay select windowed or decayed moments (0 = cumulative).
	Window int     `json:"window,omitempty"`
	Decay  float64 `json:"decay,omitempty"`
	// Workers bounds each solver's Phase-1/Phase-2 goroutines (0 =
	// GOMAXPROCS on the node).
	Workers int `json:"workers,omitempty"`
}

// Options converts the wire form into lia engine options.
func (o EngineOptions) Options() ([]lia.Option, error) {
	var opts []lia.Option
	switch o.Strategy {
	case "", "paper":
	case "greedy":
		opts = append(opts, lia.WithStrategy(lia.StrategyGreedyBasis))
	default:
		return nil, fmt.Errorf("cluster: unknown elimination strategy %q", o.Strategy)
	}
	if o.ThresholdSet {
		opts = append(opts, lia.WithThreshold(o.Threshold))
	}
	if o.Window > 0 {
		opts = append(opts, lia.WithWindow(o.Window))
	}
	if o.Decay > 0 {
		opts = append(opts, lia.WithDecay(o.Decay))
	}
	if o.Workers > 0 {
		opts = append(opts, lia.WithWorkers(o.Workers))
	}
	return opts, nil
}

// Threshold returns the effective congestion threshold the options select.
func (o EngineOptions) threshold() float64 {
	if o.ThresholdSet {
		return o.Threshold
	}
	return lia.DefaultThreshold
}

// RegisterRequest is the body of POST /cluster/v1/register: a node
// announcing itself to the coordinator. URL is the node's advertised base
// URL (scheme://host:port) the coordinator dials back.
type RegisterRequest struct {
	NodeID string `json:"node_id"`
	URL    string `json:"url"`
}

// RegisterResponse acknowledges a registration: how many nodes have joined
// of the expected fleet size, and whether placement has happened (a node
// whose registration completes the fleet sees placed=true; its assignment
// arrives as a callback to POST /cluster/v1/assign).
type RegisterResponse struct {
	NodeID string `json:"node_id"`
	Nodes  int    `json:"nodes"`
	Size   int    `json:"size"`
	Placed bool   `json:"placed"`
}

// ComponentAssignment is one link-connected component handed to a node: its
// global component index, the component's paths (global row order
// preserved — the node rebuilds the exact reduced matrix the coordinator's
// Partition.ComponentMatrix validated), and the global virtual-link indices
// its local links map back to, for observability.
type ComponentAssignment struct {
	Component int       `json:"component"`
	Links     []int     `json:"links"`
	Paths     []PathDoc `json:"paths"`
}

// AssignRequest is the body of POST /cluster/v1/assign: the coordinator
// pushing a node its component placement. Assignment is a monotonically
// increasing generation; a node discards state from older generations, and
// the ingest stream carries the generation so snapshots can never fold into
// a stale placement.
type AssignRequest struct {
	NodeID     string                `json:"node_id"`
	Assignment uint64                `json:"assignment"`
	Options    EngineOptions         `json:"options"`
	Components []ComponentAssignment `json:"components"`
}

// AssignResponse acknowledges an assignment.
type AssignResponse struct {
	NodeID     string `json:"node_id"`
	Assignment uint64 `json:"assignment"`
	Components int    `json:"components"`
	Paths      int    `json:"paths"`
}

// ingestLine is one record of the POST /cluster/v1/ingest NDJSON stream:
// a batch of snapshots, each already projected to the node's local path
// order (the concatenation of its assigned components' paths).
type ingestLine struct {
	Ys [][]float64 `json:"ys"`
}

// IngestSummary is the terminal response of one ingest stream.
type IngestSummary struct {
	NodeID string `json:"node_id"`
	// Ingested is the number of snapshots this stream folded in.
	Ingested int `json:"ingested"`
	// Snapshots is the node's lifetime count afterwards.
	Snapshots int `json:"snapshots"`
}

// InferRequest is the body of POST /cluster/v1/infer: one observation
// vector in the node's local path order.
type InferRequest struct {
	Y []float64 `json:"y"`
}

// ComponentResult is one component's slice of a gathered response, in the
// component's local link order (the coordinator owns the local->global
// map). A failing component reports Error/ErrorCode instead of values.
type ComponentResult struct {
	Component int       `json:"component"`
	Epoch     int       `json:"epoch"`
	LossRates []float64 `json:"loss_rates,omitempty"`
	LogRates  []float64 `json:"log_rates,omitempty"`
	Variances []float64 `json:"variances,omitempty"`
	Kept      []int     `json:"kept,omitempty"`
	Removed   []int     `json:"removed,omitempty"`
	Error     string    `json:"error,omitempty"`
	ErrorCode string    `json:"error_code,omitempty"`
}

// GatherResponse is the body of /cluster/v1/infer and /cluster/v1/steady:
// every assigned component's result (or error), plus the node's snapshot
// count.
type GatherResponse struct {
	NodeID     string            `json:"node_id"`
	Assignment uint64            `json:"assignment"`
	Snapshots  int               `json:"snapshots"`
	Components []ComponentResult `json:"components"`
}

// ComponentState is one component's learning state in a NodeEvent or stats
// response.
type ComponentState struct {
	Component       int    `json:"component"`
	Snapshots       int    `json:"snapshots"`
	StateEpoch      int    `json:"state_epoch"`
	Rebuilds        uint64 `json:"rebuilds"`
	ElimReuses      uint64 `json:"elim_reuses"`
	RebuildFailures uint64 `json:"rebuild_failures,omitempty"`
	// DeltaRebuilds and DirtyShards surface the component engine's
	// incremental Phase-1 telemetry: rebuilds that refolded only dirty pair
	// shards, and the shard work of the most recent rebuild.
	DeltaRebuilds uint64 `json:"delta_rebuilds,omitempty"`
	DirtyShards   int    `json:"dirty_shards,omitempty"`
	Degraded      bool   `json:"degraded,omitempty"`
	LastError     string `json:"last_error,omitempty"`
}

// NodeEvent is one NDJSON line of GET /cluster/v1/watch (and the body of
// GET /cluster/v1/stats, with type "stats"): the node's epoch state. The
// coordinator tails this stream per node to know when gathered state is
// fresh without polling; StateEpoch is the oldest component state the node
// serves (-1 before every component rebuilt once).
type NodeEvent struct {
	Type       string `json:"type"` // "epoch", "heartbeat" or "stats"
	NodeID     string `json:"node_id"`
	Assignment uint64 `json:"assignment"`
	Snapshots  int    `json:"snapshots"`
	StateEpoch int    `json:"state_epoch"`
	Degraded   bool   `json:"degraded"`
	// DirtyComponents counts this node's components with snapshots their
	// served state has not absorbed yet — the components the next rebuild
	// wave will actually rebuild; the rest will be skipped.
	DirtyComponents int              `json:"dirty_components,omitempty"`
	Components      []ComponentState `json:"components,omitempty"`
}

// ErrorResponse is the body of every non-2xx cluster-protocol response.
type ErrorResponse struct {
	Error string `json:"error"`
	Code  string `json:"code,omitempty"`
}

// Sentinel wire codes: component and protocol errors carry the lia sentinel
// identity across HTTP so the coordinator can rebuild errors.Is-compatible
// chains on its side.
const (
	codeTooFewSnapshots   = "too_few_snapshots"
	codeDimensionMismatch = "dimension_mismatch"
	codeRebuildFailed     = "rebuild_failed"
	codeUnidentifiable    = "unidentifiable"
	codeStaleAssignment   = "stale_assignment"
	codeNotAssigned       = "not_assigned"
)

// wireCode maps an error to its sentinel wire code ("" when none applies).
func wireCode(err error) string {
	switch {
	case errors.Is(err, lia.ErrTooFewSnapshots):
		return codeTooFewSnapshots
	case errors.Is(err, lia.ErrDimensionMismatch):
		return codeDimensionMismatch
	case errors.Is(err, lia.ErrRebuildFailed):
		return codeRebuildFailed
	case errors.Is(err, lia.ErrUnidentifiable):
		return codeUnidentifiable
	}
	return ""
}

// sentinelFor reverses wireCode.
func sentinelFor(code string) error {
	switch code {
	case codeTooFewSnapshots, codeNotAssigned:
		// An unassigned node is a fleet that has not warmed up yet: callers
		// should retry after placement, exactly like pre-learning queries.
		return lia.ErrTooFewSnapshots
	case codeDimensionMismatch:
		return lia.ErrDimensionMismatch
	case codeRebuildFailed:
		return lia.ErrRebuildFailed
	case codeUnidentifiable:
		return lia.ErrUnidentifiable
	}
	return nil
}

// wireError is a remote error rebuilt on the coordinator side with its
// sentinel identity intact.
type wireError struct {
	msg      string
	sentinel error
}

func (e *wireError) Error() string { return e.msg }
func (e *wireError) Unwrap() error { return e.sentinel }

// decodeError rebuilds a remote error from its wire form; nil when the wire
// carried no error.
func decodeError(msg, code string) error {
	if msg == "" {
		return nil
	}
	return &wireError{msg: msg, sentinel: sentinelFor(code)}
}
