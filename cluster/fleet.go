package cluster

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"lia"
)

// FleetConfig configures a coordinator-side Fleet.
type FleetConfig struct {
	// Size is the number of nodes the fleet waits for before placing
	// components. Required, >= 1.
	Size int
	// Options is the engine configuration propagated to every node, so the
	// fleet's per-component solvers match a single-process engine bitwise.
	Options EngineOptions
	// Client performs all coordinator->node HTTP; it must not set an
	// overall Timeout (the ingest and watch streams are long-lived).
	// Defaults to a plain http.Client.
	Client *http.Client
	// IngestBuffer bounds the per-node queue of scattered batches awaiting
	// the ingest stream; a full queue drops the batch for that node (its
	// components degrade, everyone else is unaffected). Default 1024.
	IngestBuffer int
	// ReconnectMin/ReconnectMax bound the supervision backoff for the
	// per-node ingest and watch streams (defaults 100ms / 5s).
	ReconnectMin, ReconnectMax time.Duration
	// Logf receives supervision logs (default discards).
	Logf func(format string, args ...any)
}

// fleetComponent is one link-connected component as the coordinator sees
// it: the scatter/gather index maps plus the wire-ready path documents the
// owning node rebuilds its engine from.
type fleetComponent struct {
	paths []int     // global path (row) indices, ascending
	links []int     // local virtual link -> global virtual link
	docs  []PathDoc // the component's paths, global row order preserved
}

// nodeClient is the coordinator's handle on one registered node: its
// assignment slice, the scatter queue feeding its supervised ingest
// stream, and the cached state of its watch stream.
type nodeClient struct {
	id string

	mu    sync.Mutex
	url   string
	comps []int // owned component indices, in scatter order
	paths []int // concatenated global path indices, in scatter order

	// One incarnation per registration: the batch queue and the stream
	// context are replaced together when the node re-registers, so a stream
	// opened against the node's previous life can neither consume fresh
	// batches (it holds the abandoned channel) nor linger (its context is
	// cancelled).
	batches chan [][]float64 // node-local scattered batches
	sctx    context.Context  // cancelled when this incarnation ends
	scancel context.CancelFunc

	sent       atomic.Int64 // snapshots enqueued for this node
	missed     atomic.Int64 // snapshots dropped (queue full or stream broken)
	ingestLive atomic.Bool
	watchLive  atomic.Bool
	lastEvent  atomic.Pointer[NodeEvent]
}

func (nc *nodeClient) baseURL() string {
	nc.mu.Lock()
	defer nc.mu.Unlock()
	return nc.url
}

// stream returns the node's current incarnation: the context its streams
// must bind to and the batch queue they drain.
func (nc *nodeClient) stream() (context.Context, chan [][]float64) {
	nc.mu.Lock()
	defer nc.mu.Unlock()
	return nc.sctx, nc.batches
}

// reincarnate ends the node's current incarnation (severing its streams)
// and starts a fresh one. Callers must hold f.mu so no scatter races the
// channel swap; nc.mu is taken for readers that hold neither lock.
func (nc *nodeClient) reincarnate(parent context.Context, buffer int) {
	nc.mu.Lock()
	defer nc.mu.Unlock()
	if nc.scancel != nil {
		nc.scancel()
	}
	nc.sctx, nc.scancel = context.WithCancel(parent)
	nc.batches = make(chan [][]float64, buffer)
}

func (nc *nodeClient) assigned() (comps []int, paths []int) {
	nc.mu.Lock()
	defer nc.mu.Unlock()
	return nc.comps, nc.paths
}

// scatter projects a global observation vector onto the node's local path
// order (the concatenation of its components' rows).
func (nc *nodeClient) scatter(y []float64, paths []int) []float64 {
	local := make([]float64, len(paths))
	for i, pg := range paths {
		local[i] = y[pg]
	}
	return local
}

// Fleet is the coordinator-side inference engine over a cluster of nodes:
// it implements lia.Inferencer — the same surface serve.Server drives for
// a single-process engine — by scattering ingested snapshots to the nodes
// owning each link-connected component and gathering their per-component
// results back into global link order, with ShardedEngine's exact
// degradation semantics (a dead or failing component marks only its own
// links Unresolved).
//
// Construct with NewFleet, expose Handler on the coordinator's listener so
// nodes can register, and Close when done. Until Size nodes have
// registered, ingest and queries fail with lia.ErrTooFewSnapshots — the
// same retryable cold-start signal a warming single-process engine gives.
type Fleet struct {
	rm    *lia.RoutingMatrix
	part  *lia.Partition
	comps []fleetComponent
	cfg   FleetConfig

	ctx    context.Context
	cancel context.CancelFunc
	wg     sync.WaitGroup

	mu         sync.Mutex // guards nodes/placed/owners and serialises ingestion
	nodes      map[string]*nodeClient
	placed     bool
	assignment uint64
	owners     []*nodeClient // per component, nil until placed

	epoch atomic.Uint64 // fleet-lifetime ingested snapshots
}

// Fleet implements the engine surface serve.Server expects, plus the
// optional per-component and cluster introspection interfaces.
var _ lia.Inferencer = (*Fleet)(nil)

// NewFleet creates a coordinator fleet for the routing matrix. Placement
// happens when the Size'th node registers; until then the fleet reports
// cold-start errors.
func NewFleet(rm *lia.RoutingMatrix, cfg FleetConfig) (*Fleet, error) {
	if rm == nil {
		return nil, errors.New("cluster: nil routing matrix")
	}
	if cfg.Size < 1 {
		return nil, fmt.Errorf("cluster: fleet size %d must be >= 1", cfg.Size)
	}
	if _, err := cfg.Options.Options(); err != nil {
		return nil, err
	}
	if cfg.Client == nil {
		cfg.Client = &http.Client{}
	}
	if cfg.IngestBuffer <= 0 {
		cfg.IngestBuffer = 1024
	}
	if cfg.ReconnectMin <= 0 {
		cfg.ReconnectMin = 100 * time.Millisecond
	}
	if cfg.ReconnectMax <= 0 {
		cfg.ReconnectMax = 5 * time.Second
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	part := lia.NewPartition(rm)
	f := &Fleet{
		rm:     rm,
		part:   part,
		comps:  make([]fleetComponent, part.NumComponents()),
		cfg:    cfg,
		nodes:  make(map[string]*nodeClient),
		owners: make([]*nodeClient, part.NumComponents()),
	}
	for c := range f.comps {
		if _, links, err := part.ComponentMatrix(c); err != nil {
			return nil, fmt.Errorf("cluster: component %d: %w", c, err)
		} else {
			comp := part.Component(c)
			docs := make([]PathDoc, len(comp.Paths))
			for i, pg := range comp.Paths {
				p := rm.Path(pg)
				docs[i] = PathDoc{Beacon: p.Beacon, Dst: p.Dst, Links: p.Links}
			}
			f.comps[c] = fleetComponent{paths: comp.Paths, links: links, docs: docs}
		}
	}
	f.ctx, f.cancel = context.WithCancel(context.Background())
	return f, nil
}

// Close stops the fleet's supervision streams and waits for them to exit.
func (f *Fleet) Close() error {
	f.cancel()
	f.wg.Wait()
	return nil
}

// Handler returns the coordinator's cluster-protocol handler (node
// registration); mount it alongside the serve API.
func (f *Fleet) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /cluster/v1/register", f.handleRegister)
	return mux
}

// handleRegister admits a node into the fleet. The Size'th distinct node
// triggers placement; a known node re-registering (a restart, possibly at a
// new address) has its assignment re-sent so it can rebuild its components
// and resume.
func (f *Fleet) handleRegister(w http.ResponseWriter, r *http.Request) {
	var req RegisterRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "", fmt.Errorf("decode registration: %w", err))
		return
	}
	if req.NodeID == "" || req.URL == "" {
		writeError(w, http.StatusBadRequest, "", errors.New("registration needs node_id and url"))
		return
	}
	f.mu.Lock()
	nc, known := f.nodes[req.NodeID]
	if !known {
		if f.placed || len(f.nodes) >= f.cfg.Size {
			defer f.mu.Unlock()
			writeError(w, http.StatusConflict, "", fmt.Errorf("fleet of %d is full; unknown node %q cannot join", f.cfg.Size, req.NodeID))
			return
		}
		nc = &nodeClient{id: req.NodeID}
		nc.reincarnate(f.ctx, f.cfg.IngestBuffer)
		f.nodes[req.NodeID] = nc
	}
	nc.mu.Lock()
	nc.url = req.URL
	nc.mu.Unlock()
	if known {
		// A re-registration is a restarted node: its learning state and its
		// folded-snapshot count begin again, so the delivery accounting does
		// too. Batches queued at — or streams opened against — its previous
		// life are abandoned with that incarnation (f.mu is held, so no
		// producer races the swap).
		nc.reincarnate(f.ctx, f.cfg.IngestBuffer)
		nc.sent.Store(0)
		nc.missed.Store(0)
	}
	complete := len(f.nodes) == f.cfg.Size
	place := complete && !f.placed
	var push []*nodeClient
	if place {
		f.place()
		// First placement: every node learns its assignment now.
		for _, other := range f.nodes {
			push = append(push, other)
		}
	} else if f.placed {
		// Rejoin of an already-placed fleet: re-push this node only.
		push = append(push, nc)
	}
	placed, nodes := f.placed, len(f.nodes)
	f.mu.Unlock()

	f.cfg.Logf("cluster: node %s registered at %s (%d/%d, placed=%v)", req.NodeID, req.URL, nodes, f.cfg.Size, placed)
	// Assignments go out in the background; a node may still be blocked in
	// this very registration call when its callback arrives.
	for _, target := range push {
		f.wg.Add(1)
		go f.pushAssignment(target)
	}
	writeJSON(w, http.StatusOK, RegisterResponse{NodeID: req.NodeID, Nodes: nodes, Size: f.cfg.Size, Placed: placed})
}

// place computes the component placement once the fleet is complete and
// starts the per-node supervision streams. Caller holds f.mu.
//
// Placement is deterministic and join-order independent: the LPT shard
// grouping of the partition (largest pair weight first, ties by component
// index) laid onto the node IDs in sorted order.
func (f *Fleet) place() {
	ids := make([]string, 0, len(f.nodes))
	for id := range f.nodes {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	groups := f.part.Shards(f.cfg.Size)
	f.assignment++
	for i, id := range ids {
		nc := f.nodes[id]
		var comps, paths []int
		if i < len(groups) {
			comps = groups[i]
			for _, c := range comps {
				paths = append(paths, f.comps[c].paths...)
			}
		}
		nc.mu.Lock()
		nc.comps, nc.paths = comps, paths
		nc.mu.Unlock()
		for _, c := range comps {
			f.owners[c] = nc
		}
		f.wg.Add(1)
		go f.superviseWatch(nc)
		if len(paths) > 0 {
			f.wg.Add(1)
			go f.superviseIngest(nc)
		}
		f.cfg.Logf("cluster: placed components %v on node %s (%d paths)", comps, id, len(paths))
	}
	f.placed = true
}

// assignRequest builds the wire assignment for one node.
func (f *Fleet) assignRequest(nc *nodeClient) AssignRequest {
	comps, _ := nc.assigned()
	req := AssignRequest{NodeID: nc.id, Assignment: f.assignment, Options: f.cfg.Options}
	for _, c := range comps {
		req.Components = append(req.Components, ComponentAssignment{
			Component: c,
			Links:     f.comps[c].links,
			Paths:     f.comps[c].docs,
		})
	}
	return req
}

// pushAssignment delivers a node its assignment, retrying with backoff
// until it is acknowledged, rejected as stale (the node already runs it),
// or the fleet closes.
func (f *Fleet) pushAssignment(nc *nodeClient) {
	defer f.wg.Done()
	f.mu.Lock()
	req := f.assignRequest(nc)
	f.mu.Unlock()
	body, _ := json.Marshal(req)
	backoff := f.cfg.ReconnectMin
	for {
		resp, err := postJSON(f.ctx, f.cfg.Client, nc.baseURL()+"/cluster/v1/assign", body)
		if err == nil {
			_, _ = io.Copy(io.Discard, resp.Body)
			_ = resp.Body.Close()
			f.cfg.Logf("cluster: node %s accepted assignment %d (%d components)", nc.id, req.Assignment, len(req.Components))
			return
		}
		var er *wireError
		if errors.As(err, &er) && er.sentinel == nil {
			// Deliberate rejection (e.g. stale generation on a node that
			// already runs it): nothing to retry.
			f.cfg.Logf("cluster: node %s assignment %d not applied: %v", nc.id, req.Assignment, err)
			return
		}
		select {
		case <-f.ctx.Done():
			return
		case <-time.After(backoff):
		}
		if backoff *= 2; backoff > f.cfg.ReconnectMax {
			backoff = f.cfg.ReconnectMax
		}
	}
}

// superviseWatch tails the node's epoch push stream, caching the latest
// NodeEvent for Stats and reconnecting with backoff when it drops.
func (f *Fleet) superviseWatch(nc *nodeClient) {
	defer f.wg.Done()
	backoff := f.cfg.ReconnectMin
	for {
		events, err := f.watchOnce(nc)
		nc.watchLive.Store(false)
		if f.ctx.Err() != nil {
			return
		}
		if events > 0 {
			backoff = f.cfg.ReconnectMin
		}
		f.cfg.Logf("cluster: node %s watch stream ended after %d events: %v (reconnect in %v)", nc.id, events, err, backoff)
		select {
		case <-f.ctx.Done():
			return
		case <-time.After(backoff):
		}
		if backoff *= 2; backoff > f.cfg.ReconnectMax {
			backoff = f.cfg.ReconnectMax
		}
	}
}

// watchOnce consumes one connection's worth of the node's watch stream.
func (f *Fleet) watchOnce(nc *nodeClient) (events int, err error) {
	sctx, _ := nc.stream()
	req, err := http.NewRequestWithContext(sctx, http.MethodGet, nc.baseURL()+"/cluster/v1/watch", nil)
	if err != nil {
		return 0, err
	}
	resp, err := f.cfg.Client.Do(req)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return 0, decodeErrorResponse(resp)
	}
	dec := json.NewDecoder(resp.Body)
	for {
		var ev NodeEvent
		if err := dec.Decode(&ev); err != nil {
			return events, err
		}
		events++
		nc.lastEvent.Store(&ev)
		nc.watchLive.Store(true)
	}
}

// superviseIngest keeps one persistent streaming-ingest connection open to
// the node, writing queued batches as NDJSON lines and reconnecting with
// backoff when the stream breaks. Batches that hit a broken stream are
// dropped and counted missed — the node's components degrade while it is
// down and recover as fresh snapshots arrive after it returns, exactly the
// per-component degradation contract.
func (f *Fleet) superviseIngest(nc *nodeClient) {
	defer f.wg.Done()
	backoff := f.cfg.ReconnectMin
	for {
		wrote, err := f.ingestOnce(nc)
		nc.ingestLive.Store(false)
		if f.ctx.Err() != nil {
			return
		}
		if wrote > 0 {
			backoff = f.cfg.ReconnectMin
		}
		f.cfg.Logf("cluster: node %s ingest stream ended after %d snapshots: %v (reconnect in %v)", nc.id, wrote, err, backoff)
		select {
		case <-f.ctx.Done():
			return
		case <-time.After(backoff):
		}
		if backoff *= 2; backoff > f.cfg.ReconnectMax {
			backoff = f.cfg.ReconnectMax
		}
	}
}

// ingestOnce runs one streaming-ingest connection until it breaks or the
// fleet closes, returning how many snapshots it delivered.
//
// Before consuming any batch it probes the node's stats endpoint and
// requires the node to report this fleet's assignment generation. An HTTP
// server cannot deliver an early error response while a chunked request
// body is still streaming, so a node that is not (yet) on the right
// assignment aborts the connection without diagnosis — the probe keeps
// queued batches out of a stream that would be severed, and surfaces why.
func (f *Fleet) ingestOnce(nc *nodeClient) (wrote int, err error) {
	f.mu.Lock()
	gen := f.assignment
	f.mu.Unlock()
	sctx, batches := nc.stream()
	probeCtx, cancelProbe := context.WithTimeout(sctx, 10*time.Second)
	var ev NodeEvent
	err = getJSON(probeCtx, f.cfg.Client, nc.baseURL()+"/cluster/v1/stats", &ev)
	cancelProbe()
	if err != nil {
		return 0, fmt.Errorf("probe: %w", err)
	}
	if ev.Assignment != gen {
		return 0, fmt.Errorf("node reports assignment %d, fleet runs %d", ev.Assignment, gen)
	}
	pr, pw := io.Pipe()
	url := fmt.Sprintf("%s/cluster/v1/ingest?assignment=%d", nc.baseURL(), gen)
	req, err := http.NewRequestWithContext(sctx, http.MethodPost, url, pr)
	if err != nil {
		return 0, err
	}
	req.Header.Set("Content-Type", "application/x-ndjson")
	type reply struct {
		resp *http.Response
		err  error
	}
	done := make(chan reply, 1)
	go func() {
		resp, err := f.cfg.Client.Do(req)
		done <- reply{resp, err}
	}()
	// The node answered the probe on the right assignment and the stream
	// request is under way: deliveries now reach the node rather than being
	// dropped, which is what ingest-liveness means to ClusterNodes readers
	// (e.g. an operator waiting out a node restart before streaming).
	nc.ingestLive.Store(true)
	finish := func(cause error) (int, error) {
		_ = pw.CloseWithError(cause)
		r := <-done
		if r.err != nil {
			return wrote, r.err
		}
		defer r.resp.Body.Close()
		if r.resp.StatusCode != http.StatusOK {
			return wrote, decodeErrorResponse(r.resp)
		}
		_, _ = io.Copy(io.Discard, r.resp.Body)
		return wrote, cause
	}
	enc := json.NewEncoder(pw)
	for {
		select {
		case <-sctx.Done():
			return finish(nil) // graceful: node acks what it folded
		case r := <-done:
			// Server ended the stream from its side (error or rejection).
			if r.err == nil {
				defer r.resp.Body.Close()
				if r.resp.StatusCode != http.StatusOK {
					return wrote, decodeErrorResponse(r.resp)
				}
				return wrote, errors.New("ingest stream closed by node")
			}
			return wrote, r.err
		case batch := <-batches:
			if err := enc.Encode(ingestLine{Ys: batch}); err != nil {
				nc.missed.Add(int64(len(batch)))
				return finish(err)
			}
			nc.ingestLive.Store(true)
			wrote += len(batch)
		}
	}
}

// --- lia.Inferencer: ingestion ---

// RoutingMatrix returns the global matrix the fleet operates on.
func (f *Fleet) RoutingMatrix() *lia.RoutingMatrix { return f.rm }

// Partition returns the topology decomposition behind the placement.
func (f *Fleet) Partition() *lia.Partition { return f.part }

// Snapshots returns the lifetime number of snapshots accepted for scatter.
func (f *Fleet) Snapshots() int { return int(f.epoch.Load()) }

// Threshold returns the effective congestion threshold tl.
func (f *Fleet) Threshold() float64 { return f.cfg.Options.threshold() }

// errNotPlaced reports the fleet's cold state as the standard retryable
// warm-up sentinel.
func (f *Fleet) errNotPlaced(nodes int) error {
	return fmt.Errorf("cluster: fleet has %d of %d nodes, components not placed: %w",
		nodes, f.cfg.Size, lia.ErrTooFewSnapshots)
}

func (f *Fleet) checkDim(y []float64) error {
	if len(y) != f.rm.NumPaths() {
		return fmt.Errorf("%w: snapshot has %d paths, matrix has %d",
			lia.ErrDimensionMismatch, len(y), f.rm.NumPaths())
	}
	return nil
}

// Ingest folds one learning snapshot, scattering its rows to the owning
// nodes' ingest streams.
func (f *Fleet) Ingest(y []float64) error { return f.IngestBatch([][]float64{y}) }

// IngestBatch folds a batch of snapshots under one serialisation point: all
// vectors are validated first, then every node receives its projection of
// the whole batch in order. Delivery to a down node is dropped (counted
// missed) rather than blocking the fleet — its components degrade, every
// other component's learning is unaffected.
func (f *Fleet) IngestBatch(ys [][]float64) error {
	for i, y := range ys {
		if err := f.checkDim(y); err != nil {
			return fmt.Errorf("cluster: batch snapshot %d of %d (0 ingested): %w", i, len(ys), err)
		}
	}
	if len(ys) == 0 {
		return nil
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if !f.placed {
		return f.errNotPlaced(len(f.nodes))
	}
	for _, nc := range f.nodes {
		paths := nc.paths // f.mu serialises with place(); nc.paths is stable after
		if len(paths) == 0 {
			continue
		}
		batch := make([][]float64, len(ys))
		for i, y := range ys {
			batch[i] = nc.scatter(y, paths)
		}
		select {
		case nc.batches <- batch:
			nc.sent.Add(int64(len(ys)))
		default:
			nc.missed.Add(int64(len(ys)))
			f.cfg.Logf("cluster: node %s ingest queue full, dropped %d snapshots", nc.id, len(ys))
		}
	}
	f.epoch.Add(uint64(len(ys)))
	return nil
}

// Consume pulls snapshots from a source until it is exhausted or the
// context is cancelled, scattering each to the fleet.
func (f *Fleet) Consume(ctx context.Context, src lia.SnapshotSource) (int, error) {
	n := 0
	for {
		if err := ctx.Err(); err != nil {
			return n, err
		}
		snap, err := src.Next(ctx)
		if err != nil {
			if errors.Is(err, io.EOF) {
				return n, nil
			}
			return n, err
		}
		if err := f.Ingest(snap.Y); err != nil {
			return n, err
		}
		n++
	}
}

// --- lia.Inferencer: gathered queries ---

// placedNodes snapshots the placement for a gather; the error is the
// cold-start sentinel while the fleet is incomplete.
func (f *Fleet) placedNodes() ([]*nodeClient, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if !f.placed {
		return nil, f.errNotPlaced(len(f.nodes))
	}
	nodes := make([]*nodeClient, 0, len(f.nodes))
	for _, nc := range f.nodes {
		if len(nc.comps) > 0 {
			nodes = append(nodes, nc)
		}
	}
	return nodes, nil
}

// gather fans one query out to every owning node concurrently and collects
// per-component results and errors in component-index order. query returns
// the node's GatherResponse; a whole-node failure charges every component
// the node owns.
func (f *Fleet) gather(ctx context.Context, query func(ctx context.Context, nc *nodeClient) (*GatherResponse, error)) ([]*ComponentResult, []error, error) {
	nodes, err := f.placedNodes()
	if err != nil {
		return nil, nil, err
	}
	results := make([]*ComponentResult, len(f.comps))
	errs := make([]error, len(f.comps))
	var wg sync.WaitGroup
	for _, nc := range nodes {
		wg.Add(1)
		go func(nc *nodeClient) {
			defer wg.Done()
			comps, _ := nc.assigned()
			resp, err := query(ctx, nc)
			if err != nil {
				for _, c := range comps {
					errs[c] = fmt.Errorf("node %s: %w", nc.id, err)
				}
				return
			}
			seen := make(map[int]bool, len(resp.Components))
			for i := range resp.Components {
				cr := &resp.Components[i]
				if cr.Component < 0 || cr.Component >= len(results) {
					continue
				}
				seen[cr.Component] = true
				if cr.Error != "" {
					errs[cr.Component] = fmt.Errorf("node %s component %d: %w", nc.id, cr.Component, decodeError(cr.Error, cr.ErrorCode))
					continue
				}
				results[cr.Component] = cr
			}
			for _, c := range comps {
				if !seen[c] {
					errs[c] = fmt.Errorf("node %s: component %d missing from response", nc.id, c)
				}
			}
		}(nc)
	}
	wg.Wait()
	if err := gatherErr(ctx, errs); err != nil {
		return nil, nil, err
	}
	return results, errs, nil
}

// gatherErr mirrors lia's sharded gather semantics: caller cancellation
// always propagates, a gather where every component failed surfaces the
// joined error (preserving cold-start sentinels — warm-up is synchronized,
// all components fail together), any other mix degrades only the failing
// components.
func gatherErr(ctx context.Context, errs []error) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	for _, err := range errs {
		if err == nil {
			return nil
		}
	}
	return errors.Join(errs...)
}

// globalEpoch reduces healthy per-component epochs to the gathered view's
// epoch: the minimum (oldest state any component served).
func globalEpoch(epochs []int) int {
	min := epochs[0]
	for _, e := range epochs[1:] {
		if e < min {
			min = e
		}
	}
	return min
}

// inferNode posts one node its projection of the observation vector.
func (f *Fleet) inferNode(ctx context.Context, nc *nodeClient, y []float64) (*GatherResponse, error) {
	_, paths := nc.assigned()
	body, err := json.Marshal(InferRequest{Y: nc.scatter(y, paths)})
	if err != nil {
		return nil, err
	}
	resp, err := postJSON(ctx, f.cfg.Client, nc.baseURL()+"/cluster/v1/infer", body)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	var gr GatherResponse
	if err := json.NewDecoder(resp.Body).Decode(&gr); err != nil {
		return nil, err
	}
	return &gr, nil
}

// steadyNode fetches one node's steady-state gather.
func (f *Fleet) steadyNode(ctx context.Context, nc *nodeClient) (*GatherResponse, error) {
	var gr GatherResponse
	if err := getJSON(ctx, f.cfg.Client, nc.baseURL()+"/cluster/v1/steady", &gr); err != nil {
		return nil, err
	}
	return &gr, nil
}

// Infer runs Phase 2 on one global observation vector: each owning node
// solves its components' reduced systems, and the per-link results gather
// back into global link order, bitwise-identical to a single-process
// engine over the same snapshots. A failing component (or dead node)
// degrades only its own links — zeroed, in neither Kept nor Removed, and
// listed in Result.Unresolved; only a gather in which every component
// fails returns an error.
func (f *Fleet) Infer(ctx context.Context, y []float64) (*lia.Result, error) {
	if err := f.checkDim(y); err != nil {
		return nil, err
	}
	results, errs, err := f.gather(ctx, func(ctx context.Context, nc *nodeClient) (*GatherResponse, error) {
		return f.inferNode(ctx, nc, y)
	})
	if err != nil {
		return nil, err
	}
	nc := f.rm.NumLinks()
	out := &lia.Result{
		LossRates: make([]float64, nc),
		LogRates:  make([]float64, nc),
		Variances: make([]float64, nc),
	}
	var epochs []int
	for c, cr := range results {
		links := f.comps[c].links
		if errs[c] != nil {
			out.Unresolved = append(out.Unresolved, links...)
			continue
		}
		for kl, kg := range links {
			out.LossRates[kg] = cr.LossRates[kl]
			out.LogRates[kg] = cr.LogRates[kl]
			out.Variances[kg] = cr.Variances[kl]
		}
		for _, kl := range cr.Kept {
			out.Kept = append(out.Kept, links[kl])
		}
		for _, kl := range cr.Removed {
			out.Removed = append(out.Removed, links[kl])
		}
		epochs = append(epochs, cr.Epoch)
	}
	sort.Ints(out.Kept)
	sort.Ints(out.Removed)
	sort.Ints(out.Unresolved)
	out.Epoch = globalEpoch(epochs)
	return out, nil
}

// InferCongested runs Infer and classifies every virtual link against the
// fleet's congestion threshold.
func (f *Fleet) InferCongested(ctx context.Context, y []float64) ([]bool, *lia.Result, error) {
	res, err := f.Infer(ctx, y)
	if err != nil {
		return nil, nil, err
	}
	return res.Congested(f.Threshold()), res, nil
}

// Steady returns the steady-state learning view gathered across the fleet
// in global link order, with the sharded degradation contract (failed
// components' links in Unresolved).
func (f *Fleet) Steady(ctx context.Context) (*lia.SteadyState, error) {
	results, errs, err := f.gather(ctx, f.steadyNode)
	if err != nil {
		return nil, err
	}
	out := &lia.SteadyState{Variances: make([]float64, f.rm.NumLinks())}
	var epochs []int
	for c, cr := range results {
		links := f.comps[c].links
		if errs[c] != nil {
			out.Unresolved = append(out.Unresolved, links...)
			continue
		}
		for kl, v := range cr.Variances {
			out.Variances[links[kl]] = v
		}
		for _, kl := range cr.Kept {
			out.Kept = append(out.Kept, links[kl])
		}
		for _, kl := range cr.Removed {
			out.Removed = append(out.Removed, links[kl])
		}
		epochs = append(epochs, cr.Epoch)
	}
	sort.Ints(out.Kept)
	sort.Ints(out.Removed)
	sort.Ints(out.Unresolved)
	out.Epoch = globalEpoch(epochs)
	return out, nil
}

// Variances returns the Phase-1 per-link variance estimates in global link
// order; a failed component's links report zero (see Steady).
func (f *Fleet) Variances(ctx context.Context) ([]float64, error) {
	st, err := f.Steady(ctx)
	if err != nil {
		return nil, err
	}
	return st.Variances, nil
}

// Eliminated returns the Phase-2 kept/removed partition in global link
// order; a failed component's links appear in neither slice.
func (f *Fleet) Eliminated(ctx context.Context) (kept, removed []int, err error) {
	st, err := f.Steady(ctx)
	if err != nil {
		return nil, nil, err
	}
	return st.Kept, st.Removed, nil
}

// --- observability ---

// componentState returns the cached watch-stream state of component c and
// whether its owner is reachable.
func (f *Fleet) componentState(nc *nodeClient, c int) (ComponentState, bool) {
	ev := nc.lastEvent.Load()
	if ev == nil || !nc.watchLive.Load() {
		return ComponentState{Component: c, StateEpoch: -1}, false
	}
	for _, cs := range ev.Components {
		if cs.Component == c {
			return cs, true
		}
	}
	return ComponentState{Component: c, StateEpoch: -1}, false
}

// ComponentStats reports each component's counters in component-index
// order, from the nodes' cached watch events — non-blocking, so Stats and
// the watch endpoint never stall on a dead node. A component whose owner
// is unreachable reports Degraded with an explanatory LastError.
func (f *Fleet) ComponentStats() []lia.Stats {
	f.mu.Lock()
	owners := append([]*nodeClient(nil), f.owners...)
	f.mu.Unlock()
	out := make([]lia.Stats, len(owners))
	for c, nc := range owners {
		if nc == nil {
			out[c] = lia.Stats{StateEpoch: -1, Degraded: true, LastError: "component not placed"}
			continue
		}
		cs, live := f.componentState(nc, c)
		out[c] = lia.Stats{
			Snapshots:       cs.Snapshots,
			StateEpoch:      cs.StateEpoch,
			EpochLag:        cs.Snapshots - cs.StateEpoch,
			Rebuilds:        cs.Rebuilds,
			ElimReuses:      cs.ElimReuses,
			RebuildFailures: cs.RebuildFailures,
			DeltaRebuilds:   cs.DeltaRebuilds,
			DirtyShards:     cs.DirtyShards,
			Degraded:        cs.Degraded || !live,
			LastError:       cs.LastError,
		}
		if cs.StateEpoch < 0 {
			out[c].EpochLag = cs.Snapshots
		}
		if !live && out[c].LastError == "" {
			out[c].LastError = fmt.Sprintf("node %s unreachable", nc.id)
		}
	}
	return out
}

// Stats aggregates the fleet's observability counters in the sharded
// engine's shape: Components is the partition size, Shards the number of
// nodes carrying components, and the degradation surface counts components
// that are failing or whose owner is unreachable.
func (f *Fleet) Stats() lia.Stats {
	f.mu.Lock()
	placed := f.placed
	shards := 0
	for _, nc := range f.nodes {
		if len(nc.comps) > 0 {
			shards++
		}
	}
	f.mu.Unlock()
	s := lia.Stats{
		Snapshots:  f.Snapshots(),
		StateEpoch: -1,
		Shards:     shards,
		Components: len(f.comps),
		Window:     f.cfg.Options.Window,
		Decay:      f.cfg.Options.Decay,
	}
	if !placed {
		s.EpochLag = s.Snapshots
		s.Degraded = true
		s.DegradedComponents = len(f.comps)
		return s
	}
	oldest := -1
	for c, cs := range f.ComponentStats() {
		s.Rebuilds += cs.Rebuilds
		s.ElimReuses += cs.ElimReuses
		s.RebuildFailures += cs.RebuildFailures
		s.DeltaRebuilds += cs.DeltaRebuilds
		if cs.EpochLag > 0 && !cs.Degraded {
			s.DirtyComponents++
		}
		if cs.Degraded {
			s.DegradedComponents++
			if cs.LastError != "" && s.LastError == "" {
				s.LastError = cs.LastError
			}
		}
		if c == 0 || cs.StateEpoch < oldest {
			oldest = cs.StateEpoch
		}
	}
	s.Degraded = s.DegradedComponents > 0
	s.StateEpoch = oldest
	if s.StateEpoch >= 0 {
		if s.EpochLag = s.Snapshots - s.StateEpoch; s.EpochLag < 0 {
			s.EpochLag = 0
		}
	} else {
		s.EpochLag = s.Snapshots
	}
	return s
}

// ClusterNodes reports the fleet size view for metrics: total registered
// nodes and how many have both a live ingest stream and a live watch
// stream. Waiting for live == total after a node restart guarantees that
// subsequent IngestBatch deliveries are not dropped against a
// still-reconnecting stream.
func (f *Fleet) ClusterNodes() (total, live int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	for _, nc := range f.nodes {
		total++
		if nc.watchLive.Load() && nc.ingestLive.Load() {
			live++
		}
	}
	return total, live
}

// Synced blocks until every node's folded snapshot count has caught up
// with what the fleet delivered to it (sent minus known-missed), or the
// context expires — the barrier tests and smoke drivers use between
// ingestion and a parity query.
func (f *Fleet) Synced(ctx context.Context) error {
	for attempt := 0; ; attempt++ {
		lagging := ""
		nodes, err := f.placedNodes()
		if err != nil {
			lagging = err.Error()
		} else {
			for _, nc := range nodes {
				expect := nc.sent.Load() - nc.missed.Load()
				var ev NodeEvent
				if err := getJSON(ctx, f.cfg.Client, nc.baseURL()+"/cluster/v1/stats", &ev); err != nil {
					lagging = fmt.Sprintf("node %s: %v", nc.id, err)
					break
				}
				if int64(ev.Snapshots) < expect {
					lagging = fmt.Sprintf("node %s folded %d of %d", nc.id, ev.Snapshots, expect)
					break
				}
			}
		}
		if lagging == "" {
			return nil
		}
		if attempt%50 == 49 {
			f.cfg.Logf("cluster: still waiting for sync: %s", lagging)
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(20 * time.Millisecond):
		}
	}
}

// Missed reports snapshots dropped on the way to down or backlogged nodes,
// summed across the fleet.
func (f *Fleet) Missed() int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	var n int64
	for _, nc := range f.nodes {
		n += nc.missed.Load()
	}
	return n
}
