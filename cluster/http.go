package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"

	"lia"
)

// writeJSON writes a JSON response body with the given status.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

// writeError writes the protocol error body. code carries the sentinel wire
// code when one applies ("" otherwise).
func writeError(w http.ResponseWriter, status int, code string, err error) {
	writeJSON(w, status, ErrorResponse{Error: err.Error(), Code: code})
}

// errStatus maps an engine error to the protocol's HTTP status: malformed
// observations are the caller's fault, a cold engine is a retryable
// conflict, anything else is internal.
func errStatus(err error) int {
	switch {
	case errors.Is(err, lia.ErrDimensionMismatch):
		return http.StatusBadRequest
	case errors.Is(err, lia.ErrTooFewSnapshots):
		return http.StatusConflict
	}
	return http.StatusInternalServerError
}

func readerFor(body []byte) io.Reader { return bytes.NewReader(body) }

// decodeErrorResponse turns a non-2xx protocol response into an error,
// preserving the remote sentinel identity when the body carries a wire
// code.
func decodeErrorResponse(resp *http.Response) error {
	var er ErrorResponse
	if err := json.NewDecoder(io.LimitReader(resp.Body, 1<<16)).Decode(&er); err != nil || er.Error == "" {
		return fmt.Errorf("http %d from %s", resp.StatusCode, resp.Request.URL)
	}
	return fmt.Errorf("http %d from %s: %w", resp.StatusCode, resp.Request.URL, decodeError(er.Error, er.Code))
}

// getJSON fetches a URL and decodes the JSON response into v.
func getJSON(ctx context.Context, client *http.Client, url string, v any) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return err
	}
	resp, err := client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		return decodeErrorResponse(resp)
	}
	return json.NewDecoder(resp.Body).Decode(v)
}
