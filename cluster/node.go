package cluster

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"sync/atomic"
	"time"

	"lia"
)

// nodeComponent is one assigned component running on a node: an engine over
// the component's own routing matrix (rebuilt node-side from the
// coordinator's paths — Build is deterministic, so the local link order
// matches the coordinator's Partition.ComponentMatrix exactly). The engine
// is a plain lia.Engine, or a lia.DurableEngine around one when the node
// has a StateDir.
type nodeComponent struct {
	component int   // global component index
	links     []int // local virtual link -> global virtual link
	npaths    int
	eng       lia.Inferencer
}

// placement is one immutable assignment generation: handlers snapshot it
// once and work against it, so a concurrent re-assign can never interleave
// two generations inside one request.
type placement struct {
	assignment uint64
	comps      []*nodeComponent
	totalPaths int
	epoch      atomic.Uint64 // snapshots folded into this placement
	mu         sync.Mutex    // serialises ingestion across the components
}

// Node is the worker side of a cluster: it accepts component assignments
// from a coordinator, runs one plain engine per component, folds in the
// snapshot stream the coordinator scatters to it, and answers the gather
// and watch calls. Zero value is not usable; construct with NewNode.
type Node struct {
	// ID identifies the node across reconnects; the coordinator keys
	// placement on it, so a restarted node with the same ID gets its
	// components back.
	ID string

	// WatchPoll and WatchHeartbeat pace the /cluster/v1/watch push stream
	// (defaults 50ms / 10s).
	WatchPoll      time.Duration
	WatchHeartbeat time.Duration

	// StateDir, when non-empty, makes every placed component durable: its
	// engine journals snapshots and checkpoints moments under
	// StateDir/component-%04d (keyed by global component index), and a
	// restarted node that receives the same placement back restores each
	// component's moments from local disk — bitwise-identical to the state
	// at the kill — before the coordinator resumes its stream. A component
	// whose local state is unsalvageable or belongs to a different
	// placement shape is wiped and boots cold (the log records it); the
	// node never refuses an assignment over dead state. Set before serving.
	StateDir string

	// Durability tunes the per-component WAL and checkpoint cadence when
	// StateDir is set (zero value = lia defaults).
	Durability lia.DurabilityOptions

	// Logf receives supervision logs (default log is discarded).
	Logf func(format string, args ...any)

	mu    sync.Mutex
	place *placement // nil before the first assignment
}

// NewNode creates a node with the given stable identity.
func NewNode(id string) *Node {
	return &Node{
		ID:             id,
		WatchPoll:      50 * time.Millisecond,
		WatchHeartbeat: 10 * time.Second,
		Logf:           func(string, ...any) {},
	}
}

// Handler returns the node's cluster-protocol HTTP handler.
func (n *Node) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /cluster/v1/assign", n.handleAssign)
	mux.HandleFunc("POST /cluster/v1/ingest", n.handleIngest)
	mux.HandleFunc("POST /cluster/v1/infer", n.handleInfer)
	mux.HandleFunc("GET /cluster/v1/steady", n.handleSteady)
	mux.HandleFunc("GET /cluster/v1/stats", n.handleStats)
	mux.HandleFunc("GET /cluster/v1/watch", n.handleWatch)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
		_, _ = io.WriteString(w, "ok\n")
	})
	return mux
}

// current returns the active placement, or nil before assignment.
func (n *Node) current() *placement {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.place
}

// Assignment returns the active assignment generation (0 before any).
func (n *Node) Assignment() uint64 {
	if p := n.current(); p != nil {
		return p.assignment
	}
	return 0
}

// Snapshots returns the snapshots folded into the active placement.
func (n *Node) Snapshots() int {
	if p := n.current(); p != nil {
		return int(p.epoch.Load())
	}
	return 0
}

// Close releases the active placement's engines after the node's HTTP
// server has drained. For a durable node (StateDir set) this writes each
// component's final checkpoint, so the next boot restores without WAL
// replay; a node killed without Close recovers the same state, just by
// replaying the journal tail. A later assignment builds fresh engines.
func (n *Node) Close() error {
	n.mu.Lock()
	p := n.place
	n.place = nil
	n.mu.Unlock()
	if p == nil {
		return nil
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	var first error
	for _, nc := range p.comps {
		if c, ok := nc.eng.(io.Closer); ok {
			if err := c.Close(); err != nil && first == nil {
				first = err
			}
		}
	}
	return first
}

// apply installs a new placement from an assignment request, discarding any
// older generation's engines and their learning state.
func (n *Node) apply(req AssignRequest) (*placement, error) {
	opts, err := req.Options.Options()
	if err != nil {
		return nil, err
	}
	p := &placement{assignment: req.Assignment}
	for _, ca := range req.Components {
		paths := make([]lia.Path, len(ca.Paths))
		for i, pd := range ca.Paths {
			paths[i] = lia.Path{Beacon: pd.Beacon, Dst: pd.Dst, Links: pd.Links}
		}
		rm, err := lia.NewTopology(paths)
		if err != nil {
			return nil, fmt.Errorf("component %d: %w", ca.Component, err)
		}
		if got := rm.NumLinks(); got != len(ca.Links) {
			return nil, fmt.Errorf("component %d: rebuilt %d virtual links, coordinator placed %d — path set is not one link-connected component", ca.Component, got, len(ca.Links))
		}
		eng, err := n.buildEngine(rm, ca.Component, opts)
		if err != nil {
			return nil, fmt.Errorf("component %d: %w", ca.Component, err)
		}
		p.comps = append(p.comps, &nodeComponent{
			component: ca.Component,
			links:     append([]int(nil), ca.Links...),
			npaths:    rm.NumPaths(),
			eng:       eng,
		})
		p.totalPaths += rm.NumPaths()
	}
	if n.StateDir != "" && len(p.comps) > 0 {
		// A restored placement resumes at its components' recovered epoch.
		// Components journal independently, so a crash between component
		// folds of one batch can leave them one epoch apart; the placement
		// reports the minimum (the epoch every component has reached).
		minSnaps := -1
		for _, nc := range p.comps {
			if s := nc.eng.Snapshots(); minSnaps < 0 || s < minSnaps {
				minSnaps = s
			}
		}
		p.epoch.Store(uint64(minSnaps))
	}
	n.mu.Lock()
	old := n.place
	n.place = p
	n.mu.Unlock()
	if old != nil {
		// Release the superseded generation's durable resources: a final
		// checkpoint lands and its WAL handle closes, so the state on disk
		// is consistent right up to the handover (and an in-flight old-
		// generation stream fails fast instead of journalling into it).
		for _, nc := range old.comps {
			if c, ok := nc.eng.(io.Closer); ok {
				if err := c.Close(); err != nil {
					n.Logf("cluster node %s: closing superseded component %d: %v", n.ID, nc.component, err)
				}
			}
		}
		n.Logf("cluster node %s: assignment %d supersedes %d (%d components, %d paths)",
			n.ID, p.assignment, old.assignment, len(p.comps), p.totalPaths)
	} else {
		n.Logf("cluster node %s: assignment %d (%d components, %d paths)",
			n.ID, p.assignment, len(p.comps), p.totalPaths)
	}
	return p, nil
}

// buildEngine constructs one placed component's engine: a plain lia.Engine,
// or — when the node has a StateDir — a durable engine rooted at
// StateDir/component-%04d that restores the moments a previous process of
// this node persisted for the same component. Unsalvageable or
// wrong-shape state (the placement changed while the node was down) is
// wiped for a cold boot rather than refusing the assignment: the
// coordinator's stream re-teaches a cold component, a node stuck rejecting
// assignments teaches nothing.
func (n *Node) buildEngine(rm *lia.RoutingMatrix, component int, opts []lia.Option) (lia.Inferencer, error) {
	if n.StateDir == "" {
		return lia.NewEngine(rm, opts...)
	}
	dir := filepath.Join(n.StateDir, fmt.Sprintf("component-%04d", component))
	// WithShards(1) pins the inner engine to the plain implementation — a
	// placed component is one link-connected unit by construction.
	dopts := append(append([]lia.Option{}, opts...),
		lia.WithShards(1), lia.WithDurability(dir, n.Durability))
	eng, err := lia.New(rm, dopts...)
	var corrupt *lia.CorruptStateError
	if errors.As(err, &corrupt) {
		n.Logf("cluster node %s: component %d state in %s unsalvageable, booting cold: %v",
			n.ID, component, dir, err)
		if err := os.RemoveAll(dir); err != nil {
			return nil, fmt.Errorf("clearing corrupt state dir: %w", err)
		}
		eng, err = lia.New(rm, dopts...)
	}
	if err != nil {
		return nil, err
	}
	if ds := eng.(*lia.DurableEngine).DurabilityStats(); ds.RecoveredEpoch > 0 || ds.ReplayedSnapshots > 0 {
		n.Logf("cluster node %s: component %d restored epoch %d (+%d replayed) from %s",
			n.ID, component, ds.RecoveredEpoch, ds.ReplayedSnapshots, dir)
	}
	return eng, nil
}

func (n *Node) handleAssign(w http.ResponseWriter, r *http.Request) {
	var req AssignRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "", fmt.Errorf("decode assignment: %w", err))
		return
	}
	if req.NodeID != n.ID {
		writeError(w, http.StatusBadRequest, "", fmt.Errorf("assignment addressed to node %q, this is %q", req.NodeID, n.ID))
		return
	}
	if cur := n.current(); cur != nil && req.Assignment <= cur.assignment {
		writeError(w, http.StatusConflict, codeStaleAssignment,
			fmt.Errorf("assignment %d is not newer than active %d", req.Assignment, cur.assignment))
		return
	}
	p, err := n.apply(req)
	if err != nil {
		writeError(w, http.StatusBadRequest, "", err)
		return
	}
	writeJSON(w, http.StatusOK, AssignResponse{
		NodeID:     n.ID,
		Assignment: p.assignment,
		Components: len(p.comps),
		Paths:      p.totalPaths,
	})
}

// requirePlacement resolves the active placement and checks the request's
// assignment generation (query parameter "assignment"; 0/absent skips the
// check — used by read paths that accept whatever is current).
func (n *Node) requirePlacement(w http.ResponseWriter, r *http.Request) (*placement, bool) {
	p := n.current()
	if p == nil {
		writeError(w, http.StatusConflict, codeNotAssigned, errors.New("node has no component assignment yet"))
		return nil, false
	}
	if q := r.URL.Query().Get("assignment"); q != "" && q != "0" {
		var gen uint64
		if _, err := fmt.Sscanf(q, "%d", &gen); err != nil {
			writeError(w, http.StatusBadRequest, "", fmt.Errorf("bad assignment %q", q))
			return nil, false
		}
		if gen != p.assignment {
			writeError(w, http.StatusConflict, codeStaleAssignment,
				fmt.Errorf("request is for assignment %d, node runs %d", gen, p.assignment))
			return nil, false
		}
	}
	return p, true
}

// split cuts a node-local observation vector into per-component views, in
// assignment order (the scatter concatenates components the same way).
func (p *placement) split(y []float64) ([][]float64, error) {
	if len(y) != p.totalPaths {
		return nil, fmt.Errorf("%w: snapshot has %d paths, placement has %d", lia.ErrDimensionMismatch, len(y), p.totalPaths)
	}
	out := make([][]float64, len(p.comps))
	off := 0
	for c, nc := range p.comps {
		out[c] = y[off : off+nc.npaths]
		off += nc.npaths
	}
	return out, nil
}

// handleIngest serves POST /cluster/v1/ingest: the coordinator's persistent
// NDJSON snapshot stream. Each line carries a batch of node-local
// observation vectors; every batch folds atomically across the placement's
// components under one serialisation point, so all components observe the
// same snapshot order. The stream is pinned to an assignment generation — a
// re-assignment severs it mid-flight rather than folding old-placement
// snapshots into new engines.
//
// Rejections ABORT the connection instead of writing an error response.
// Go's HTTP server withholds a handler's response while a chunked request
// body is still streaming (it drains up to 256KB after the handler returns
// before flushing, to dodge a TCP-reset race), so a status code written
// mid-stream is invisible to a coordinator that keeps the pipe open — its
// batches would drain into a rejected stream silently. Severing the
// connection is the only rejection signal that arrives promptly; the
// coordinator re-probes GET /cluster/v1/stats before reconnecting, which
// carries the full diagnosis.
func (n *Node) handleIngest(w http.ResponseWriter, r *http.Request) {
	p := n.current()
	gen := r.URL.Query().Get("assignment")
	abort := func(why error) {
		n.Logf("cluster node %s: aborting ingest stream (assignment=%s): %v", n.ID, gen, why)
		panic(http.ErrAbortHandler)
	}
	if p == nil {
		abort(errors.New("node has no component assignment yet"))
	}
	if gen != "" && gen != "0" && gen != fmt.Sprintf("%d", p.assignment) {
		abort(fmt.Errorf("stream is for assignment %s, node runs %d", gen, p.assignment))
	}
	dec := json.NewDecoder(r.Body)
	ingested := 0
	for rec := 0; ; rec++ {
		var line ingestLine
		if err := dec.Decode(&line); err != nil {
			if errors.Is(err, io.EOF) {
				break
			}
			abort(fmt.Errorf("ingest record %d (%d ingested): decode: %w", rec, ingested, err))
		}
		if n.current() != p {
			abort(fmt.Errorf("ingest record %d (%d ingested): assignment %d superseded", rec, ingested, p.assignment))
		}
		if err := p.ingest(line.Ys); err != nil {
			abort(fmt.Errorf("ingest record %d (%d ingested): %w", rec, ingested, err))
		}
		ingested += len(line.Ys)
	}
	writeJSON(w, http.StatusOK, IngestSummary{
		NodeID:    n.ID,
		Ingested:  ingested,
		Snapshots: int(p.epoch.Load()),
	})
}

// ingest folds one batch into every component, validating all vectors
// before any is folded (a bad snapshot leaves every accumulator untouched,
// matching ShardedEngine.IngestBatch).
func (p *placement) ingest(ys [][]float64) error {
	split := make([][][]float64, len(ys))
	for i, y := range ys {
		sub, err := p.split(y)
		if err != nil {
			return fmt.Errorf("batch snapshot %d of %d: %w", i, len(ys), err)
		}
		split[i] = sub
	}
	if len(ys) == 0 {
		return nil
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	for c, nc := range p.comps {
		batch := make([][]float64, len(ys))
		for i := range split {
			batch[i] = split[i][c]
		}
		if err := nc.eng.IngestBatch(batch); err != nil {
			return err // unreachable: dimensions validated above
		}
	}
	p.epoch.Add(uint64(len(ys)))
	return nil
}

// handleInfer serves POST /cluster/v1/infer: Phase 2 on one node-local
// observation vector, every assigned component solved and reported
// independently (a failing component carries its error in its own result
// slot; the HTTP status is 200 as long as the request itself was sound).
func (n *Node) handleInfer(w http.ResponseWriter, r *http.Request) {
	p, ok := n.requirePlacement(w, r)
	if !ok {
		return
	}
	var req InferRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "", fmt.Errorf("decode: %w", err))
		return
	}
	sub, err := p.split(req.Y)
	if err != nil {
		writeError(w, errStatus(err), wireCode(err), err)
		return
	}
	resp := GatherResponse{NodeID: n.ID, Assignment: p.assignment, Snapshots: int(p.epoch.Load())}
	for c, nc := range p.comps {
		cr := ComponentResult{Component: nc.component}
		res, err := nc.eng.Infer(r.Context(), sub[c])
		if err != nil {
			cr.Error, cr.ErrorCode = err.Error(), wireCode(err)
		} else {
			cr.Epoch = res.Epoch
			cr.LossRates = res.LossRates
			cr.LogRates = res.LogRates
			cr.Variances = res.Variances
			cr.Kept = res.Kept
			cr.Removed = res.Removed
		}
		resp.Components = append(resp.Components, cr)
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleSteady serves GET /cluster/v1/steady: every component's consistent
// steady-state view, with per-component failure isolation like handleInfer.
func (n *Node) handleSteady(w http.ResponseWriter, r *http.Request) {
	p, ok := n.requirePlacement(w, r)
	if !ok {
		return
	}
	resp := GatherResponse{NodeID: n.ID, Assignment: p.assignment, Snapshots: int(p.epoch.Load())}
	for _, nc := range p.comps {
		cr := ComponentResult{Component: nc.component}
		st, err := nc.eng.Steady(r.Context())
		if err != nil {
			cr.Error, cr.ErrorCode = err.Error(), wireCode(err)
		} else {
			cr.Epoch = st.Epoch
			cr.Variances = st.Variances
			cr.Kept = st.Kept
			cr.Removed = st.Removed
		}
		resp.Components = append(resp.Components, cr)
	}
	writeJSON(w, http.StatusOK, resp)
}

// event assembles the node's current epoch state.
func (n *Node) event(typ string) NodeEvent {
	ev := NodeEvent{Type: typ, NodeID: n.ID, StateEpoch: -1}
	p := n.current()
	if p == nil {
		return ev
	}
	ev.Assignment = p.assignment
	ev.Snapshots = int(p.epoch.Load())
	for c, nc := range p.comps {
		cs := nc.eng.Stats()
		degraded := cs.Degraded || (cs.StateEpoch < 0 && cs.RebuildFailures > 0)
		ev.Components = append(ev.Components, ComponentState{
			Component:       nc.component,
			Snapshots:       cs.Snapshots,
			StateEpoch:      cs.StateEpoch,
			Rebuilds:        cs.Rebuilds,
			ElimReuses:      cs.ElimReuses,
			RebuildFailures: cs.RebuildFailures,
			DeltaRebuilds:   cs.DeltaRebuilds,
			DirtyShards:     cs.DirtyShards,
			Degraded:        degraded,
			LastError:       cs.LastError,
		})
		if degraded {
			ev.Degraded = true
		}
		if cs.EpochLag > 0 || cs.StateEpoch < 0 && cs.Snapshots > 0 {
			ev.DirtyComponents++
		}
		if c == 0 || cs.StateEpoch < ev.StateEpoch {
			ev.StateEpoch = cs.StateEpoch
		}
	}
	return ev
}

func (n *Node) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, n.event("stats"))
}

// handleWatch serves GET /cluster/v1/watch: an NDJSON push stream of
// NodeEvents — the current state immediately, a new event whenever the
// node's epoch state changes, and heartbeats while it does not. The
// coordinator tails this stream to track fleet freshness without polling.
func (n *Node) handleWatch(w http.ResponseWriter, r *http.Request) {
	flusher, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusInternalServerError, "", errors.New("response writer cannot stream"))
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("Cache-Control", "no-store")
	w.WriteHeader(http.StatusOK)

	enc := json.NewEncoder(w)
	emit := func(ev NodeEvent) bool {
		if err := enc.Encode(ev); err != nil {
			return false
		}
		flusher.Flush()
		return true
	}
	last := n.event("epoch")
	if !emit(last) {
		return
	}
	lastWrite := time.Now()
	ticker := time.NewTicker(n.WatchPoll)
	defer ticker.Stop()
	for {
		select {
		case <-r.Context().Done():
			return
		case <-ticker.C:
		}
		ev := n.event("epoch")
		switch {
		case !sameNodeState(ev, last):
			if !emit(ev) {
				return
			}
			last, lastWrite = ev, time.Now()
		case time.Since(lastWrite) >= n.WatchHeartbeat:
			ev.Type = "heartbeat"
			if !emit(ev) {
				return
			}
			lastWrite = time.Now()
		}
	}
}

// sameNodeState reports whether two events describe the same node state
// (everything but the event type).
func sameNodeState(a, b NodeEvent) bool {
	a.Type, b.Type = "", ""
	return reflect.DeepEqual(a, b)
}

// Register announces the node to a coordinator, retrying with exponential
// backoff until it succeeds or the context ends. The coordinator calls back
// on /cluster/v1/assign once the fleet is complete.
func (n *Node) Register(ctx context.Context, client *http.Client, coordinatorURL, advertiseURL string) error {
	if client == nil {
		client = http.DefaultClient
	}
	body, err := json.Marshal(RegisterRequest{NodeID: n.ID, URL: advertiseURL})
	if err != nil {
		return err
	}
	backoff := 100 * time.Millisecond
	for {
		resp, err := postJSON(ctx, client, coordinatorURL+"/cluster/v1/register", body)
		if err == nil {
			var ack RegisterResponse
			err = json.NewDecoder(resp.Body).Decode(&ack)
			_ = resp.Body.Close()
			if err == nil {
				n.Logf("cluster node %s: registered with %s (%d/%d nodes, placed=%v)",
					n.ID, coordinatorURL, ack.Nodes, ack.Size, ack.Placed)
				return nil
			}
		}
		n.Logf("cluster node %s: register with %s failed (retrying in %v): %v", n.ID, coordinatorURL, backoff, err)
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(backoff):
		}
		if backoff *= 2; backoff > 5*time.Second {
			backoff = 5 * time.Second
		}
	}
}

// postJSON posts a JSON body and returns the response, turning non-2xx
// statuses into errors carrying the remote ErrorResponse.
func postJSON(ctx context.Context, client *http.Client, url string, body []byte) (*http.Response, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, readerFor(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := client.Do(req)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode/100 != 2 {
		defer resp.Body.Close()
		return nil, decodeErrorResponse(resp)
	}
	return resp, nil
}
