package cluster_test

import (
	"context"
	"crypto/sha256"
	"encoding/binary"
	"encoding/json"
	"errors"
	"math"
	"math/rand/v2"
	"net/http"
	"net/http/httptest"
	"reflect"
	"testing"
	"time"

	"lia"
	"lia/cluster"
)

// star builds a 2-level star component: n leaf paths sharing one root link,
// link IDs offset by base so several stars are link-disjoint.
func star(base, beacon, n int) []lia.Path {
	paths := make([]lia.Path, n)
	for i := range paths {
		paths[i] = lia.Path{Beacon: beacon, Dst: beacon + 1 + i, Links: []int{base, base + 1 + i}}
	}
	return paths
}

// interleave merges path sets round-robin so components are non-contiguous
// in the global row order.
func interleave(sets ...[]lia.Path) []lia.Path {
	var out []lia.Path
	for i := 0; ; i++ {
		added := false
		for _, s := range sets {
			if i < len(s) {
				out = append(out, s[i])
				added = true
			}
		}
		if !added {
			return out
		}
	}
}

// synthSnapshots synthesizes m Gaussian snapshots over rm, deterministic
// for a given seed (the same generator the root package's sharded tests
// use, so fingerprints are comparable in spirit).
func synthSnapshots(rm *lia.RoutingMatrix, m int, seed uint64) [][]float64 {
	rng := rand.New(rand.NewPCG(seed, 99))
	sigma := make([]float64, rm.NumLinks())
	for k := range sigma {
		sigma[k] = 1e-3 * (1 + rng.Float64())
	}
	snaps := make([][]float64, m)
	x := make([]float64, rm.NumLinks())
	for t := range snaps {
		for k := range x {
			x[k] = rng.NormFloat64() * sigma[k]
		}
		y := make([]float64, rm.NumPaths())
		for i := range y {
			for _, k := range rm.Row(i) {
				y[i] += x[k]
			}
		}
		snaps[t] = y
	}
	return snaps
}

// workload is the canonical 3-component interleaved topology with 60
// learning snapshots.
func workload(t testing.TB) (*lia.RoutingMatrix, [][]float64) {
	t.Helper()
	rm, err := lia.NewTopology(interleave(
		star(0, 100, 6),
		star(1000, 200, 4),
		star(2000, 300, 3),
	))
	if err != nil {
		t.Fatal(err)
	}
	return rm, synthSnapshots(rm, 60, 7)
}

// testNode is one in-process cluster worker behind a real HTTP listener.
type testNode struct {
	id   string
	node *cluster.Node
	srv  *httptest.Server
}

// testCluster is a coordinator fleet plus its worker nodes, all in-process
// over loopback HTTP.
type testCluster struct {
	fleet *cluster.Fleet
	coord *httptest.Server
	nodes map[string]*testNode
}

// startNode boots a worker with the given identity and registers it.
func (tc *testCluster) startNode(t testing.TB, id string) *testNode {
	t.Helper()
	return tc.startNodeWith(t, id, nil)
}

// startNodeWith boots a worker, applying configure (may be nil) before it
// starts serving — e.g. to give the node a durable StateDir.
func (tc *testCluster) startNodeWith(t testing.TB, id string, configure func(*cluster.Node)) *testNode {
	t.Helper()
	n := cluster.NewNode(id)
	n.WatchPoll = 5 * time.Millisecond
	if configure != nil {
		configure(n)
	}
	tn := &testNode{id: id, node: n, srv: httptest.NewServer(n.Handler())}
	tc.nodes[id] = tn
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := n.Register(ctx, nil, tc.coord.URL, tn.srv.URL); err != nil {
		t.Fatalf("register node %s: %v", id, err)
	}
	return tn
}

// startCluster boots a fleet of len(ids) nodes, registering them in the
// given order, and waits until every node holds its assignment.
func startCluster(t testing.TB, rm *lia.RoutingMatrix, ids []string) *testCluster {
	t.Helper()
	return startClusterWith(t, rm, ids, nil)
}

// startClusterWith is startCluster with a per-node configure hook.
func startClusterWith(t testing.TB, rm *lia.RoutingMatrix, ids []string, configure func(id string, n *cluster.Node)) *testCluster {
	t.Helper()
	fleet, err := cluster.NewFleet(rm, cluster.FleetConfig{
		Size:         len(ids),
		ReconnectMin: 10 * time.Millisecond,
		ReconnectMax: 200 * time.Millisecond,
		Logf:         t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	tc := &testCluster{fleet: fleet, coord: httptest.NewServer(fleet.Handler()), nodes: map[string]*testNode{}}
	t.Cleanup(func() {
		_ = fleet.Close()
		tc.coord.Close()
		for _, tn := range tc.nodes {
			tn.srv.Close()
		}
	})
	for _, id := range ids {
		if configure != nil {
			id := id
			tc.startNodeWith(t, id, func(n *cluster.Node) { configure(id, n) })
		} else {
			tc.startNode(t, id)
		}
	}
	deadline := time.Now().Add(10 * time.Second)
	for _, tn := range tc.nodes {
		for tn.node.Assignment() == 0 {
			if time.Now().After(deadline) {
				t.Fatalf("node %s never received its assignment", tn.id)
			}
			time.Sleep(5 * time.Millisecond)
		}
	}
	return tc
}

// sync ingests nothing; it waits until every node folded what was sent.
func (tc *testCluster) sync(t testing.TB) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	if err := tc.fleet.Synced(ctx); err != nil {
		t.Fatalf("fleet never synced: %v", err)
	}
}

// TestFleetParity is the tentpole invariant: Infer and Steady gathered from
// an N-node cluster are bitwise-identical to a single lia.New engine fed
// the same snapshots, for every N in {1, 2, 4}, regardless of join order.
func TestFleetParity(t *testing.T) {
	ctx := context.Background()
	rm, snaps := workload(t)
	probe := synthSnapshots(rm, 1, 1234)[0]

	ref, err := lia.New(rm)
	if err != nil {
		t.Fatal(err)
	}
	if err := ref.IngestBatch(snaps); err != nil {
		t.Fatal(err)
	}
	wantRes, err := ref.Infer(ctx, probe)
	if err != nil {
		t.Fatal(err)
	}
	wantSteady, err := ref.Steady(ctx)
	if err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name string
		ids  []string
	}{
		{"1node", []string{"a"}},
		{"2nodes", []string{"a", "b"}},
		{"2nodes-reversed-join", []string{"b", "a"}},
		{"4nodes", []string{"a", "b", "c", "d"}},
		{"4nodes-shuffled-join", []string{"c", "a", "d", "b"}},
	}
	for _, tcase := range cases {
		t.Run(tcase.name, func(t *testing.T) {
			tc := startCluster(t, rm, tcase.ids)
			if err := tc.fleet.IngestBatch(snaps); err != nil {
				t.Fatal(err)
			}
			tc.sync(t)
			res, err := tc.fleet.Infer(ctx, probe)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(res, wantRes) {
				t.Errorf("gathered Infer diverges from single-process engine:\n got %+v\nwant %+v", res, wantRes)
			}
			steady, err := tc.fleet.Steady(ctx)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(steady, wantSteady) {
				t.Errorf("gathered Steady diverges from single-process engine:\n got %+v\nwant %+v", steady, wantSteady)
			}
			if got := tc.fleet.Snapshots(); got != len(snaps) {
				t.Errorf("fleet counted %d snapshots, want %d", got, len(snaps))
			}
			if missed := tc.fleet.Missed(); missed != 0 {
				t.Errorf("healthy cluster dropped %d snapshots", missed)
			}
		})
	}
}

// TestClusterScalingFingerprint extends the root package's scaling
// fingerprint to cluster placement: the SHA-256 of the gathered estimates
// is bitwise-identical across 1/2/4-node placements, across join orders,
// and to the single-process engine. CI runs this at several GOMAXPROCS
// values and asserts the printed fingerprint never changes.
func TestClusterScalingFingerprint(t *testing.T) {
	ctx := context.Background()
	rm, snaps := workload(t)
	probe := snaps[0]

	digest := func(res *lia.Result) [32]byte {
		h := sha256.New()
		var buf [8]byte
		for _, vals := range [][]float64{res.Variances, res.LossRates, res.LogRates} {
			for _, v := range vals {
				binary.LittleEndian.PutUint64(buf[:], math.Float64bits(v))
				h.Write(buf[:])
			}
		}
		var out [32]byte
		copy(out[:], h.Sum(nil))
		return out
	}

	ref, err := lia.New(rm)
	if err != nil {
		t.Fatal(err)
	}
	if err := ref.IngestBatch(snaps); err != nil {
		t.Fatal(err)
	}
	refRes, err := ref.Infer(ctx, probe)
	if err != nil {
		t.Fatal(err)
	}
	want := digest(refRes)

	for _, ids := range [][]string{
		{"solo"},
		{"a", "b"},
		{"b", "a"},
		{"a", "b", "c", "d"},
		{"d", "c", "b", "a"},
	} {
		tc := startCluster(t, rm, ids)
		if err := tc.fleet.IngestBatch(snaps); err != nil {
			t.Fatal(err)
		}
		tc.sync(t)
		res, err := tc.fleet.Infer(ctx, probe)
		if err != nil {
			t.Fatal(err)
		}
		if got := digest(res); got != want {
			t.Errorf("placement %v: fingerprint %x diverges from single-process %x", ids, got, want)
		}
		_ = tc.fleet.Close()
	}
	t.Logf("fingerprint=%x", want)
}

// TestFleetColdStart asserts the fleet reports the standard retryable
// warm-up sentinel until placement completes.
func TestFleetColdStart(t *testing.T) {
	rm, snaps := workload(t)
	fleet, err := cluster.NewFleet(rm, cluster.FleetConfig{Size: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer fleet.Close()
	if err := fleet.IngestBatch(snaps); !errors.Is(err, lia.ErrTooFewSnapshots) {
		t.Errorf("ingest before placement: %v, want ErrTooFewSnapshots", err)
	}
	if _, err := fleet.Infer(context.Background(), snaps[0]); !errors.Is(err, lia.ErrTooFewSnapshots) {
		t.Errorf("infer before placement: %v, want ErrTooFewSnapshots", err)
	}
	st := fleet.Stats()
	if !st.Degraded || st.Components != 3 {
		t.Errorf("cold fleet stats: %+v", st)
	}
}

// TestFleetStatsFromWatch asserts the coordinator's cached watch-stream
// state converges to the fleet's true epoch without any blocking node
// calls.
func TestFleetStatsFromWatch(t *testing.T) {
	rm, snaps := workload(t)
	tc := startCluster(t, rm, []string{"a", "b"})
	if err := tc.fleet.IngestBatch(snaps); err != nil {
		t.Fatal(err)
	}
	tc.sync(t)
	if _, err := tc.fleet.Infer(context.Background(), snaps[0]); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		st := tc.fleet.Stats()
		if st.StateEpoch == len(snaps) && !st.Degraded && st.EpochLag == 0 {
			if st.Components != 3 {
				t.Fatalf("stats components = %d, want 3", st.Components)
			}
			cs := tc.fleet.ComponentStats()
			if len(cs) != 3 {
				t.Fatalf("ComponentStats returned %d entries, want 3", len(cs))
			}
			for c, s := range cs {
				if s.StateEpoch != len(snaps) || s.Degraded {
					t.Fatalf("component %d stats: %+v", c, s)
				}
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("stats never converged via watch stream: %+v", st)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if total, live := tc.fleet.ClusterNodes(); total != 2 || live != 2 {
		t.Errorf("ClusterNodes = (%d, %d), want (2, 2)", total, live)
	}
}

// TestFleetNodeDeathAndRejoin exercises the degradation contract end to
// end: killing one node marks only its components' links Unresolved (the
// healthy node's estimates stay bitwise identical), and a restarted node
// with the same identity is re-assigned, re-learns from fresh snapshots,
// and the fleet recovers.
func TestFleetNodeDeathAndRejoin(t *testing.T) {
	ctx := context.Background()
	rm, snaps := workload(t)
	probe := synthSnapshots(rm, 1, 1234)[0]
	part := lia.NewPartition(rm)

	// Sorted node IDs get the LPT shard groups in order: "a" takes the
	// heaviest component (the 6-leaf star), "b" the other two.
	tc := startCluster(t, rm, []string{"a", "b"})
	if err := tc.fleet.IngestBatch(snaps); err != nil {
		t.Fatal(err)
	}
	tc.sync(t)
	baseline, err := tc.fleet.Infer(ctx, probe)
	if err != nil {
		t.Fatal(err)
	}
	if len(baseline.Unresolved) != 0 {
		t.Fatalf("healthy cluster has unresolved links: %v", baseline.Unresolved)
	}

	// Kill node b (sever its live streams first, then the listener).
	tc.nodes["b"].srv.CloseClientConnections()
	tc.nodes["b"].srv.Close()
	res, err := tc.fleet.Infer(ctx, probe)
	if err != nil {
		t.Fatal(err)
	}
	ownedByA := map[int]bool{}
	for k := 0; k < rm.NumLinks(); k++ {
		if part.ComponentOfLink(k) == 0 { // component 0 is the heaviest star
			ownedByA[k] = true
		}
	}
	for _, k := range res.Unresolved {
		if ownedByA[k] {
			t.Errorf("link %d owned by live node a is unresolved", k)
		}
	}
	if want := rm.NumLinks() - len(ownedByA); len(res.Unresolved) != want {
		t.Errorf("%d unresolved links after killing b, want %d", len(res.Unresolved), want)
	}
	for k := range ownedByA {
		if res.Variances[k] != baseline.Variances[k] || res.LossRates[k] != baseline.LossRates[k] {
			t.Errorf("link %d estimates changed when an unrelated node died", k)
		}
	}
	for _, k := range res.Kept {
		if !ownedByA[k] {
			t.Errorf("dead node's link %d still in Kept", k)
		}
	}

	// The watch stream notices the death and the degradation surfaces.
	deadline := time.Now().Add(10 * time.Second)
	for {
		st := tc.fleet.Stats()
		if st.Degraded && st.DegradedComponents == 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("fleet never surfaced node death: %+v", st)
		}
		time.Sleep(10 * time.Millisecond)
	}

	// Rejoin: a fresh process with the same identity at a new address.
	tc.startNode(t, "b")
	deadline = time.Now().Add(10 * time.Second)
	for tc.nodes["b"].node.Assignment() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("rejoined node never received its assignment")
		}
		time.Sleep(5 * time.Millisecond)
	}

	// Fresh snapshots re-warm the rejoined node's components.
	snaps2 := synthSnapshots(rm, 60, 8)
	if err := tc.fleet.IngestBatch(snaps2); err != nil {
		t.Fatal(err)
	}
	tc.sync(t)
	rec, err := tc.fleet.Infer(ctx, probe)
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Unresolved) != 0 {
		t.Fatalf("cluster did not recover after rejoin: unresolved %v", rec.Unresolved)
	}
	// Node a saw both batches; its estimates match an engine fed both. The
	// rejoined node restarted its learning; its estimates match an engine
	// fed only the post-rejoin batch.
	refBoth, err := lia.New(rm)
	if err != nil {
		t.Fatal(err)
	}
	if err := refBoth.IngestBatch(append(append([][]float64{}, snaps...), snaps2...)); err != nil {
		t.Fatal(err)
	}
	wantBoth, err := refBoth.Infer(ctx, probe)
	if err != nil {
		t.Fatal(err)
	}
	refNew, err := lia.New(rm)
	if err != nil {
		t.Fatal(err)
	}
	if err := refNew.IngestBatch(snaps2); err != nil {
		t.Fatal(err)
	}
	wantNew, err := refNew.Infer(ctx, probe)
	if err != nil {
		t.Fatal(err)
	}
	for k := 0; k < rm.NumLinks(); k++ {
		want := wantNew
		if ownedByA[k] {
			want = wantBoth
		}
		if rec.Variances[k] != want.Variances[k] || rec.LossRates[k] != want.LossRates[k] {
			t.Errorf("link %d after rejoin: var %v loss %v, want %v / %v",
				k, rec.Variances[k], rec.LossRates[k], want.Variances[k], want.LossRates[k])
		}
	}
}

// TestNodeRejectsForeignAssignment asserts a node refuses an assignment
// addressed to a different identity.
func TestNodeRejectsForeignAssignment(t *testing.T) {
	rm, _ := workload(t)
	fleet, err := cluster.NewFleet(rm, cluster.FleetConfig{Size: 1, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	coord := httptest.NewServer(fleet.Handler())

	n := cluster.NewNode("right")
	srv := httptest.NewServer(n.Handler())
	// The fleet's supervision streams hold persistent connections; it must
	// close before the servers or their Close blocks on the live streams.
	defer func() {
		_ = fleet.Close()
		coord.Close()
		srv.Close()
	}()

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	wrong := cluster.NewNode("wrong")
	// Registering "right"'s URL under "wrong"'s identity: the assignment
	// callback reaches the node but is addressed to "wrong", so it must be
	// rejected and the node stays unassigned.
	if err := wrong.Register(ctx, nil, coord.URL, srv.URL); err != nil {
		t.Fatal(err)
	}
	time.Sleep(300 * time.Millisecond)
	if got := n.Assignment(); got != 0 {
		t.Errorf("node accepted a foreign assignment (generation %d)", got)
	}
}

// TestFleetNodeRestartRestoresState is the cluster leg of the durability
// invariant: a node with a StateDir is killed (listener severed, engines
// abandoned without Close — everything acked is on disk, as after SIGKILL)
// and a fresh process with the same identity and StateDir rejoins. Its
// placed components restore from local state, so the cluster's answers are
// bitwise-identical to never having lost the node — no re-teaching batch
// required.
func TestFleetNodeRestartRestoresState(t *testing.T) {
	ctx := context.Background()
	rm, snaps := workload(t)
	probe := synthSnapshots(rm, 1, 1234)[0]

	stateDirs := map[string]string{"a": t.TempDir(), "b": t.TempDir()}
	durable := func(id string, n *cluster.Node) {
		n.StateDir = stateDirs[id]
		n.Durability = lia.DurabilityOptions{CheckpointEvery: 16}
		n.Logf = t.Logf
	}
	tc := startClusterWith(t, rm, []string{"a", "b"}, durable)
	if err := tc.fleet.IngestBatch(snaps); err != nil {
		t.Fatal(err)
	}
	tc.sync(t)
	baseline, err := tc.fleet.Infer(ctx, probe)
	if err != nil {
		t.Fatal(err)
	}
	if len(baseline.Unresolved) != 0 {
		t.Fatalf("healthy cluster has unresolved links: %v", baseline.Unresolved)
	}

	// Kill node b without closing its engines: the WAL has every acked
	// batch (appends are unbuffered write syscalls), exactly like SIGKILL.
	tc.nodes["b"].srv.CloseClientConnections()
	tc.nodes["b"].srv.Close()

	// Rejoin with the same identity AND the same state directory.
	tc.startNodeWith(t, "b", func(n *cluster.Node) { durable("b", n) })
	deadline := time.Now().Add(10 * time.Second)
	for tc.nodes["b"].node.Assignment() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("restarted node never received its assignment")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if got := tc.nodes["b"].node.Snapshots(); got != len(snaps) {
		t.Fatalf("restarted node reports %d snapshots, want %d restored", got, len(snaps))
	}

	// No new snapshots: the restored state alone must answer, bitwise.
	rec, err := tc.fleet.Infer(ctx, probe)
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Unresolved) != 0 {
		t.Fatalf("restored node left links unresolved: %v", rec.Unresolved)
	}
	for k := 0; k < rm.NumLinks(); k++ {
		if math.Float64bits(rec.Variances[k]) != math.Float64bits(baseline.Variances[k]) ||
			math.Float64bits(rec.LossRates[k]) != math.Float64bits(baseline.LossRates[k]) {
			t.Fatalf("link %d differs after restart-with-state", k)
		}
	}

	// The stream continues: later snapshots fold on top of the restored
	// moments, staying bitwise-equal to an uninterrupted reference. Wait for
	// the fleet's ingest stream to node b to re-establish first — deliveries
	// against a still-reconnecting stream are dropped by design.
	for {
		if total, live := tc.fleet.ClusterNodes(); total == 2 && live == 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("fleet streams to the restarted node never went live")
		}
		time.Sleep(5 * time.Millisecond)
	}
	snaps2 := synthSnapshots(rm, 40, 8)
	if err := tc.fleet.IngestBatch(snaps2); err != nil {
		t.Fatal(err)
	}
	tc.sync(t)
	if got, want := tc.nodes["b"].node.Snapshots(), len(snaps)+len(snaps2); got != want {
		t.Fatalf("node b has %d snapshots after the post-restart stream, want %d", got, want)
	}
	final, err := tc.fleet.Infer(ctx, probe)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := lia.New(rm)
	if err != nil {
		t.Fatal(err)
	}
	if err := ref.IngestBatch(append(append([][]float64{}, snaps...), snaps2...)); err != nil {
		t.Fatal(err)
	}
	want, err := ref.Infer(ctx, probe)
	if err != nil {
		t.Fatal(err)
	}
	for k := 0; k < rm.NumLinks(); k++ {
		if math.Float64bits(final.Variances[k]) != math.Float64bits(want.Variances[k]) ||
			math.Float64bits(final.LossRates[k]) != math.Float64bits(want.LossRates[k]) {
			t.Fatalf("link %d differs after post-restart stream", k)
		}
	}
}

// nodeStatsEvent fetches one node's GET /cluster/v1/stats body.
func nodeStatsEvent(t testing.TB, tn *testNode) cluster.NodeEvent {
	t.Helper()
	resp, err := http.Get(tn.srv.URL + "/cluster/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stats endpoint: %s", resp.Status)
	}
	var ev cluster.NodeEvent
	if err := json.NewDecoder(resp.Body).Decode(&ev); err != nil {
		t.Fatal(err)
	}
	return ev
}

// TestNodeStatsDirtyComponents pins the per-node dirty surface of
// /cluster/v1/stats: after an ingest wave with no gather, every component a
// node carries is dirty — it holds snapshots its served state has not
// absorbed — and one gathered inference rebuilds exactly those components,
// draining the count to zero.
func TestNodeStatsDirtyComponents(t *testing.T) {
	rm, snaps := workload(t)
	tc := startCluster(t, rm, []string{"a", "b"})
	if err := tc.fleet.IngestBatch(snaps); err != nil {
		t.Fatal(err)
	}
	tc.sync(t)
	for id, tn := range tc.nodes {
		ev := nodeStatsEvent(t, tn)
		if len(ev.Components) == 0 {
			t.Fatalf("node %s carries no components", id)
		}
		if ev.DirtyComponents != len(ev.Components) {
			t.Fatalf("node %s: DirtyComponents = %d before any gather, want %d (all)",
				id, ev.DirtyComponents, len(ev.Components))
		}
	}
	if _, err := tc.fleet.Infer(context.Background(), snaps[0]); err != nil {
		t.Fatal(err)
	}
	for id, tn := range tc.nodes {
		ev := nodeStatsEvent(t, tn)
		if ev.DirtyComponents != 0 {
			t.Fatalf("node %s: DirtyComponents = %d after a gathered inference, want 0",
				id, ev.DirtyComponents)
		}
		for _, cs := range ev.Components {
			if cs.Rebuilds == 0 || cs.StateEpoch != len(snaps) {
				t.Fatalf("node %s component %d: %+v after gather", id, cs.Component, cs)
			}
		}
	}
}
