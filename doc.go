// Package lia is the public face of this reproduction of "Network loss
// inference with second order statistics of end-to-end flows" (Nguyen &
// Thiran, IMC 2007): a concurrency-safe inference engine that localises
// lossy (or high-delay) links from nothing but end-to-end path
// measurements.
//
// The API maps onto the paper as follows:
//
//   - NewTopology performs the alias reduction of §3.1, turning raw
//     end-to-end Paths into the reduced routing matrix R; RemoveFluttering
//     repairs the no-route-fluttering assumption T.2, and Identifiable /
//     AugmentedRank check the second-order identifiability of Lemma 2 and
//     Theorem 1.
//   - Engine.Ingest and IngestBatch fold learning snapshots into the
//     running second-order moments of §5.1 (eq. 7); Phase 1 — solving
//     Σ* = A·v for the per-link variances (Lemma 1) — runs lazily when an
//     inference needs it.
//   - Engine.Infer is Phase 2 (§5.2): order links by learned variance,
//     eliminate the least-variant columns until R* has full column rank,
//     and solve the reduced first-order system for the newest snapshot.
//     Together they are the LIA algorithm of §5.3.
//   - Engine.Watch wraps the incremental-update machinery of §5.1 ("only
//     the rows corresponding to the changes need to be updated"): paths can
//     be deactivated and reactivated as beacons come and go, touching O(np)
//     equations instead of rebuilding the O(np²) system.
//   - WithObservation(ObserveLinear) switches the snapshot semantics to
//     additive path metrics — the §8 delay-tomography extension.
//
// An Engine is safe for concurrent use: snapshot ingestion serialises on a
// short critical section (one Welford fold), while Infer runs lock-free in
// the steady state against an atomically-swapped cache of the Phase-1
// variances and elimination order, keyed by an ingestion epoch. Many
// goroutines can infer while others ingest. Rebuilds after new learning
// data are incremental: under the default clamp policy the Phase-1 normal
// equations' Gram matrix depends only on the topology, so its factorization
// is computed once and reused (bit-identically) across rebuilds.
//
// By default the learning moments are cumulative over all ingested history.
// WithWindow(n) switches to an exact sliding window over the last n
// snapshots and WithDecay(lambda) to exponentially-decayed moments, so
// long-running engines track congestion regime changes instead of averaging
// them away.
//
// Topologies whose routing matrix splits into link-disjoint components
// (federated or multi-domain path sets) shard: New returns a ShardedEngine
// — the same surface as Engine, abstracted by the Inferencer interface —
// that partitions the matrix into its link-connected components (union-find
// over the link supports, see the internal topology.Partition), scatters
// every snapshot to per-component accumulators, and rebuilds load-balanced
// component groups concurrently, each with its own cached Phase-1
// factorization and Phase-2 elimination. Neither LIA phase couples paths
// that share no links, so the decomposition is exact: per-component
// estimates are bitwise-identical to an unsharded engine run on that
// component alone, while the pair equations straddling components (empty
// supports) are never enumerated at all. WithShards tunes or disables the
// policy.
//
// Steady-state rebuilds are O(delta) in the data that moved, not in the
// topology. Windowed accumulators track which packed comoment blocks each
// snapshot dirtied, and the next rebuild patches only those blocks'
// contributions into the cached Phase-1 right-hand side — bitwise-equal to
// a full refold by construction. A sharded engine additionally skips every
// component none of whose paths saw a snapshot; IngestSparse feeds whole
// components selectively so localized traffic dirties only the components
// it names (ErrPartialComponent rejects partial coverage). Stats reports
// the wave shape (DeltaRebuilds, DirtyComponents, DirtyShards,
// SkippedComponents), and WithRebalance lets the sharded engine re-group
// components across its rebuild shards as measured costs drift — moving no
// state, so estimates stay bitwise-identical to a never-rebalanced run.
//
// Measurement collection is decoupled from inference through the
// SnapshotSource interface: NewSimSource streams synthetic campaigns from
// the packet-level simulator, NewTraceSource adapts recorded received
// fractions (e.g. the emulated overlay's traces), and NewFileSource /
// OpenFileSource read newline-delimited measurement files such as the
// collector's output stream. Malformed lines in such files surface as
// *LineError (with the line number) and the stream resumes after them.
//
// Live measurement planes fail in ways recorded files do not, so sources
// compose with resilience combinators: RetrySource retries transient Next
// errors with seeded exponential backoff and per-attempt timeouts
// (exhaustion surfaces as *RetryError; io.EOF and context cancellation pass
// through untouched), and SanitizeSource quarantines snapshots that would
// poison the moments — NaN/Inf entries, dimension mismatches, outliers past
// a configurable bound — behind counters instead of letting them reach
// Ingest. The lia/chaos subpackage is the test harness for that chain: a
// deterministic fault-injecting source wrapper (drops, duplicates, NaN
// corruption, spikes, transient errors, stalls, mid-stream EOFs) driven by
// a seeded schedule.
//
// Engines degrade rather than fail: when a rebuild cannot produce a new
// estimate (unidentifiable window, solver failure, even a panic in the
// rebuild path), the last successfully built epoch keeps serving and the
// failure is recorded in Stats (Degraded, RebuildFailures, LastError,
// StateAge). ErrRebuildFailed is returned only when there is no last-good
// state to fall back on; WithStrictRebuilds restores fail-fast semantics.
// A ShardedEngine degrades per component: a failing component marks only
// its own links Unresolved while the others keep resolving normally.
//
// The accumulated moments can also survive the process. WithDurability
// wraps the engine in a DurableEngine that appends every acknowledged
// snapshot to a segmented write-ahead log (the lia/wal subpackage, with a
// configurable fsync policy) before folding it, checkpoints the moment
// state periodically with an exact binary codec (Engine.Checkpoint /
// RestoreFrom expose it directly), and on construction recovers the newest
// valid checkpoint plus the WAL tail — bitwise-identical to never having
// crashed, for cumulative, windowed, and decayed moments alike. A corrupt
// newest checkpoint falls back to the previous one automatically; only a
// fully unsalvageable directory surfaces a *CorruptStateError. FileSource
// tracks its byte offset (Offset / OpenFileSourceAt), so a restored server
// resumes a measurement file where the checkpoint left off.
//
// The lia/serve subpackage runs engines as a monitoring service: an HTTP
// JSON API (ingest, inference, steady-state link estimates, status,
// Prometheus metrics) over one or more named topologies, with background
// source consumption and a periodic rebuild policy — plus a live
// CollectorSource that accepts the emulated overlay's beacon/sink reports
// directly and re-listens on its address if the listener dies mid-stream.
// Server-consumed sources are supervised (restarted with backoff, surfaced
// per source in /v1/status), and GET /readyz separates readiness — state
// built, nothing degraded, no source in backoff — from /healthz liveness.
// cmd/liaserve is the ready-made binary; Engine.Stats and
// Engine.Eliminated are the observability hooks it reads. GET /v1/watch
// pushes epoch-advance events to long-lived clients as an NDJSON stream,
// so dashboards learn of new estimates without polling.
//
// The lia/cluster subpackage stretches the sharding decomposition across
// processes: a coordinator (liaserve -coordinator N) computes the same
// link-connected partition, places component groups on registered nodes
// (liaserve -join, longest-processing-time over pair-equation weight, so
// placement is deterministic and independent of join order), scatters each
// ingested snapshot's per-component projections over persistent streaming
// connections, and gathers Infer/Links/Status from the fleet back into
// global link order. Because the decomposition is exact, the gathered
// estimates are bitwise-identical to a single process on the same
// snapshots — for any node count. Degradation stays per-component: an
// unreachable node marks only the links it hosts Unresolved while the
// rest of the fleet keeps serving, /readyz names the missing node, and a
// node that rejoins under the same identity is re-placed and re-fed.
//
// The lia/world subpackage is the adversary those layers are tested
// against: a long-running, seeded-deterministic world server whose
// per-link capacity/queue congestion model produces the non-stationary,
// correlated-loss regimes the paper's estimator is built for — diurnal
// load curves, congestion events that correlate loss across every path
// sharing the bottleneck, flapping links, mid-run rerouting. Scenarios are
// served over a newline-delimited-JSON TCP protocol (cmd/liaworld is the
// standalone binary); NewWorldSource is the client-side SnapshotSource, so
// a world stream composes with RetrySource, SanitizeSource, and liaserve's
// supervised ingestion exactly like a real measurement plane, while the
// server's control surface can shift the loss regime mid-run and report
// the ground truth an estimate should be converging to. The same seed and
// schedule reproduce every stream bit for bit, regardless of batching,
// reconnects, or GOMAXPROCS. ThinSource subsamples any source (keep-rate
// or stride) for quick-look monitoring, reporting in its Stats the
// divisor correction a variance consumer owes the thinned stream.
package lia
