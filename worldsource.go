package lia

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"lia/world"
)

// WorldConfig tunes a WorldSource.
type WorldConfig struct {
	// Scenario is the named world on the server to attach to ("" selects
	// "default"). Several consumers naming the same scenario share one
	// world; a control connection can steer it concurrently.
	Scenario string

	// Probes is S, the per-path probe count: forwarded to the server (so a
	// freshly created scenario samples binomial observation noise at this
	// rate) and used to clamp zero-delivery paths in LogRates. ≤ 0 keeps
	// the server default and the paper's clamp default of 1000.
	Probes int

	// Batch is how many snapshots each network round-trip pulls
	// (default 16, max 4096). Larger batches amortise protocol overhead;
	// smaller ones keep WorldLag tighter.
	Batch int

	// DialTimeout bounds connection establishment (default 5s).
	DialTimeout time.Duration
}

// WorldSource streams snapshots from a world server (see package
// lia/world): it dials lazily, assigns the routing matrix's physical paths
// as the scenario topology, pulls snapshot batches, and converts each tick
// into the engine's observation vector with per-virtual-link ground truth
// attached. It implements SnapshotSource and composes with RetrySource /
// SanitizeSource like any other source.
//
// On a connection error WorldSource surfaces the error and drops the
// connection; the following Next redials and re-assigns. The server's
// create-or-attach assign semantics make that resume the world where it
// is — so serve's supervised-restart path continues the scenario rather
// than replaying it from tick 0.
type WorldSource struct {
	addr  string
	rm    *RoutingMatrix
	cfg   WorldConfig
	paths [][]int

	mu      sync.Mutex
	cli     *world.Client
	pending []*world.Tick
	// members[k] indexes virtual link k's physical members into the wire
	// Loss/Regime arrays (built from the assign link-ID order).
	members   [][]int
	lastTick  int // tick of the last delivered snapshot
	worldTick int // world time after the last pull (the next ack's tick)
	closed    bool
}

// NewWorldSource returns a source streaming from the world server at addr
// (host:port), using rm's physical routes as the scenario topology. No
// connection is made until the first Next.
func NewWorldSource(addr string, rm *RoutingMatrix, cfg WorldConfig) *WorldSource {
	if cfg.Batch <= 0 {
		cfg.Batch = 16
	}
	if cfg.Batch > 4096 {
		cfg.Batch = 4096
	}
	if cfg.DialTimeout <= 0 {
		cfg.DialTimeout = 5 * time.Second
	}
	paths := make([][]int, rm.NumPaths())
	for i := range paths {
		paths[i] = rm.Path(i).Links
	}
	return &WorldSource{addr: addr, rm: rm, cfg: cfg, paths: paths, lastTick: -1}
}

// connect dials and assigns, building the truth index from the advertised
// link-ID order.
func (s *WorldSource) connect() error {
	cli, err := world.Dial(s.addr, s.cfg.DialTimeout)
	if err != nil {
		return err
	}
	info, err := cli.Assign(s.cfg.Scenario, s.paths, s.cfg.Probes)
	if err != nil {
		cli.Close()
		return err
	}
	if info.Paths != s.rm.NumPaths() {
		cli.Close()
		return fmt.Errorf("lia: world scenario has %d paths, routing matrix has %d: %w",
			info.Paths, s.rm.NumPaths(), ErrDimensionMismatch)
	}
	idx := make(map[int]int, len(info.LinkIDs))
	for i, id := range info.LinkIDs {
		idx[id] = i
	}
	members := make([][]int, s.rm.NumLinks())
	for k := range members {
		for _, phys := range s.rm.Members(k) {
			if i, ok := idx[phys]; ok {
				members[k] = append(members[k], i)
			}
		}
	}
	s.cli, s.members = cli, members
	s.worldTick = info.Tick
	return nil
}

// Next implements SnapshotSource, pulling a fresh batch when the buffered
// one is drained. A transport error drops the connection and is returned
// as-is (wrap with NewRetrySource for resilience); the next call redials.
func (s *WorldSource) Next(ctx context.Context) (Snapshot, error) {
	if err := ctx.Err(); err != nil {
		return Snapshot{}, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return Snapshot{}, errors.New("lia: world source closed")
	}
	if len(s.pending) == 0 {
		if s.cli == nil {
			if err := s.connect(); err != nil {
				return Snapshot{}, err
			}
		}
		if dl, ok := ctx.Deadline(); ok {
			_ = s.cli.SetDeadline(dl)
		} else {
			_ = s.cli.SetDeadline(time.Time{})
		}
		batch, tick, err := s.cli.Next(s.cfg.Scenario, s.cfg.Batch)
		if err != nil {
			s.cli.Close()
			s.cli = nil
			return Snapshot{}, err
		}
		s.pending, s.worldTick = batch, tick
	}
	tk := s.pending[0]
	s.pending = s.pending[1:]
	s.lastTick = tk.Tick
	return Snapshot{
		Y:     LogRates(tk.Frac, s.cfg.Probes),
		Truth: s.virtualTruth(tk.Regime),
	}, nil
}

// virtualTruth folds the wire's per-physical-link regime means into
// per-virtual-link loss rates, matching the Truth convention of the other
// simulator sources. Physical links the routing matrix does not know (a
// world that rerouted past the consumer's topology) simply do not
// contribute — that drift is exactly what staleness detection is for.
func (s *WorldSource) virtualTruth(regime []float64) []float64 {
	out := make([]float64, len(s.members))
	for k, mem := range s.members {
		tr := 1.0
		for _, i := range mem {
			if i < len(regime) {
				tr *= 1 - regime[i]
			}
		}
		out[k] = 1 - tr
	}
	return out
}

// WorldLag reports how many generated snapshots the consumer has not yet
// ingested: the world tick after the last pull minus the tick last
// delivered. It rises when other consumers (or large batches) advance the
// shared scenario ahead of this one, and drains to zero as the buffered
// batch is consumed. serve exports it as the liaserve_world_lag metric.
func (s *WorldSource) WorldLag() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	lag := s.worldTick - 1 - s.lastTick
	if lag < 0 {
		lag = 0
	}
	return lag
}

// Close severs the server connection; subsequent Next calls fail.
func (s *WorldSource) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.closed = true
	if s.cli == nil {
		return nil
	}
	err := s.cli.Close()
	s.cli = nil
	return err
}
