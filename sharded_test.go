package lia_test

import (
	"context"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"math"
	"math/rand/v2"
	"testing"

	"lia"
	"lia/internal/topology"
)

// shardStar builds a 2-level star component: n leaf paths sharing one root
// link, link IDs offset by base so several stars are link-disjoint.
func shardStar(base, beacon, n int) []lia.Path {
	paths := make([]lia.Path, n)
	for i := range paths {
		paths[i] = lia.Path{Beacon: beacon, Dst: beacon + 1 + i, Links: []int{base, base + 1 + i}}
	}
	return paths
}

// shardInterleave merges path sets round-robin so components are
// non-contiguous in the global row order.
func shardInterleave(sets ...[]lia.Path) []lia.Path {
	var out []lia.Path
	for i := 0; ; i++ {
		added := false
		for _, s := range sets {
			if i < len(s) {
				out = append(out, s[i])
				added = true
			}
		}
		if !added {
			return out
		}
	}
}

// shardSnapshots synthesizes m Gaussian snapshots over rm: per-link latent
// variances, per-snapshot link draws summed along each path. Deterministic
// for a given seed.
func shardSnapshots(rm *lia.RoutingMatrix, m int, seed uint64) [][]float64 {
	rng := rand.New(rand.NewPCG(seed, 99))
	sigma := make([]float64, rm.NumLinks())
	for k := range sigma {
		sigma[k] = 1e-3 * (1 + rng.Float64())
	}
	snaps := make([][]float64, m)
	x := make([]float64, rm.NumLinks())
	for t := range snaps {
		for k := range x {
			x[k] = rng.NormFloat64() * sigma[k]
		}
		y := make([]float64, rm.NumPaths())
		for i := range y {
			for _, k := range rm.Row(i) {
				y[i] += x[k]
			}
		}
		snaps[t] = y
	}
	return snaps
}

// disconnectedWorkload builds a 3-component interleaved topology with 60
// learning snapshots.
func disconnectedWorkload(t testing.TB) (*lia.RoutingMatrix, [][]float64) {
	t.Helper()
	rm, err := lia.NewTopology(shardInterleave(
		shardStar(0, 100, 6),
		shardStar(1000, 200, 4),
		shardStar(2000, 300, 3),
	))
	if err != nil {
		t.Fatal(err)
	}
	return rm, shardSnapshots(rm, 60, 7)
}

// TestShardedBitwiseParityPerComponent is the tentpole invariant: every
// component of a ShardedEngine produces estimates bitwise-identical to a
// plain Engine run on that component's paths alone, fed the same rows of
// the same snapshots.
func TestShardedBitwiseParityPerComponent(t *testing.T) {
	ctx := context.Background()
	rm, snaps := disconnectedWorkload(t)
	se, err := lia.NewShardedEngine(rm, lia.WithShards(2))
	if err != nil {
		t.Fatal(err)
	}
	if se.NumComponents() != 3 {
		t.Fatalf("workload has %d components, want 3", se.NumComponents())
	}
	if se.NumShards() != 2 {
		t.Fatalf("WithShards(2) produced %d shards", se.NumShards())
	}
	for _, y := range snaps {
		if err := se.Ingest(y); err != nil {
			t.Fatal(err)
		}
	}
	probe := shardSnapshots(rm, 1, 1234)[0]
	res, err := se.Infer(ctx, probe)
	if err != nil {
		t.Fatal(err)
	}
	vars, err := se.Variances(ctx)
	if err != nil {
		t.Fatal(err)
	}

	part := topology.NewPartition(rm)
	seenKept := map[int]bool{}
	for _, k := range res.Kept {
		seenKept[k] = true
	}
	for c := 0; c < part.NumComponents(); c++ {
		comp := part.Component(c)
		paths := make([]lia.Path, len(comp.Paths))
		for pl, pg := range comp.Paths {
			paths[pl] = rm.Path(pg)
		}
		crm, err := lia.NewTopology(paths)
		if err != nil {
			t.Fatal(err)
		}
		ref, err := lia.NewEngine(crm)
		if err != nil {
			t.Fatal(err)
		}
		sub := make([]float64, len(comp.Paths))
		for _, y := range snaps {
			for pl, pg := range comp.Paths {
				sub[pl] = y[pg]
			}
			if err := ref.Ingest(sub); err != nil {
				t.Fatal(err)
			}
		}
		for pl, pg := range comp.Paths {
			sub[pl] = probe[pg]
		}
		want, err := ref.Infer(ctx, sub)
		if err != nil {
			t.Fatal(err)
		}
		for kl := 0; kl < crm.NumLinks(); kl++ {
			kg, ok := rm.VirtualOf(crm.Members(kl)[0])
			if !ok {
				t.Fatalf("component %d link %d lost its global identity", c, kl)
			}
			if vars[kg] != want.Variances[kl] {
				t.Fatalf("component %d link %d: sharded variance %g != reference %g (not bitwise)",
					c, kl, vars[kg], want.Variances[kl])
			}
			if res.LossRates[kg] != want.LossRates[kl] || res.LogRates[kg] != want.LogRates[kl] {
				t.Fatalf("component %d link %d: sharded inference (%g, %g) != reference (%g, %g)",
					c, kl, res.LossRates[kg], res.LogRates[kg], want.LossRates[kl], want.LogRates[kl])
			}
			wantKept := false
			for _, wk := range want.Kept {
				if wk == kl {
					wantKept = true
				}
			}
			if seenKept[kg] != wantKept {
				t.Fatalf("component %d link %d: sharded kept=%v, reference kept=%v",
					c, kl, seenKept[kg], wantKept)
			}
		}
	}
	if len(res.Kept)+len(res.Removed) != rm.NumLinks() {
		t.Fatalf("kept %d + removed %d != %d links", len(res.Kept), len(res.Removed), rm.NumLinks())
	}
}

// TestShardedMatchesUnshardedApprox sanity-checks the whole-matrix view:
// the global unsharded solve on a disconnected topology decomposes
// block-wise, so sharded and unsharded variances agree to floating-point
// reassociation noise (the reduction orders differ, so this is approximate
// by design; the bitwise contract is per component, tested above).
func TestShardedMatchesUnshardedApprox(t *testing.T) {
	ctx := context.Background()
	rm, snaps := disconnectedWorkload(t)
	se, err := lia.NewShardedEngine(rm)
	if err != nil {
		t.Fatal(err)
	}
	un, err := lia.NewEngine(rm)
	if err != nil {
		t.Fatal(err)
	}
	for _, y := range snaps {
		if err := se.Ingest(y); err != nil {
			t.Fatal(err)
		}
		if err := un.Ingest(y); err != nil {
			t.Fatal(err)
		}
	}
	sv, err := se.Variances(ctx)
	if err != nil {
		t.Fatal(err)
	}
	uv, err := un.Variances(ctx)
	if err != nil {
		t.Fatal(err)
	}
	for k := range sv {
		diff := math.Abs(sv[k] - uv[k])
		scale := math.Max(math.Abs(uv[k]), 1e-12)
		if diff > 1e-9*scale && diff > 1e-18 {
			t.Fatalf("link %d: sharded %g vs unsharded %g diverge beyond reassociation noise", k, sv[k], uv[k])
		}
	}
}

// TestShardedSingleComponentBitwise: a fully connected topology yields one
// shard, whose engine is the plain engine — results must be bitwise equal.
func TestShardedSingleComponentBitwise(t *testing.T) {
	ctx := context.Background()
	rm, err := lia.NewTopology(shardStar(0, 100, 8))
	if err != nil {
		t.Fatal(err)
	}
	snaps := shardSnapshots(rm, 50, 3)
	se, err := lia.NewShardedEngine(rm, lia.WithShards(4))
	if err != nil {
		t.Fatal(err)
	}
	if se.NumComponents() != 1 || se.NumShards() != 1 {
		t.Fatalf("connected topology gave %d components in %d shards, want 1 in 1",
			se.NumComponents(), se.NumShards())
	}
	ref, err := lia.NewEngine(rm)
	if err != nil {
		t.Fatal(err)
	}
	for _, y := range snaps {
		if err := se.Ingest(y); err != nil {
			t.Fatal(err)
		}
		if err := ref.Ingest(y); err != nil {
			t.Fatal(err)
		}
	}
	probe := shardSnapshots(rm, 1, 77)[0]
	got, err := se.Infer(ctx, probe)
	if err != nil {
		t.Fatal(err)
	}
	want, err := ref.Infer(ctx, probe)
	if err != nil {
		t.Fatal(err)
	}
	for k := range want.LossRates {
		if got.LossRates[k] != want.LossRates[k] || got.LogRates[k] != want.LogRates[k] ||
			got.Variances[k] != want.Variances[k] {
			t.Fatalf("link %d: single-component sharded result differs from plain engine", k)
		}
	}
	if got.Epoch != want.Epoch {
		t.Fatalf("epoch %d != %d", got.Epoch, want.Epoch)
	}
}

// TestNewAutoDispatch: New picks a ShardedEngine exactly when the topology
// is disconnected (or sharding was requested), and a plain Engine otherwise.
func TestNewAutoDispatch(t *testing.T) {
	connected, err := lia.NewTopology(shardStar(0, 100, 4))
	if err != nil {
		t.Fatal(err)
	}
	disconnected, err := lia.NewTopology(shardInterleave(shardStar(0, 100, 3), shardStar(1000, 200, 3)))
	if err != nil {
		t.Fatal(err)
	}
	if eng, err := lia.New(connected); err != nil {
		t.Fatal(err)
	} else if _, ok := eng.(*lia.Engine); !ok {
		t.Fatalf("New on a connected topology returned %T, want *lia.Engine", eng)
	}
	if eng, err := lia.New(disconnected); err != nil {
		t.Fatal(err)
	} else if _, ok := eng.(*lia.ShardedEngine); !ok {
		t.Fatalf("New on a disconnected topology returned %T, want *lia.ShardedEngine", eng)
	}
	if eng, err := lia.New(disconnected, lia.WithShards(1)); err != nil {
		t.Fatal(err)
	} else if _, ok := eng.(*lia.Engine); !ok {
		t.Fatalf("New with WithShards(1) returned %T, want *lia.Engine", eng)
	}
	if eng, err := lia.New(disconnected, lia.WithShards(2)); err != nil {
		t.Fatal(err)
	} else if _, ok := eng.(*lia.ShardedEngine); !ok {
		t.Fatalf("New with WithShards(2) returned %T, want *lia.ShardedEngine", eng)
	}
	// A connected topology gets the plain engine even under an explicit
	// shard request: one component means sharding is pure overhead.
	if eng, err := lia.New(connected, lia.WithShards(2)); err != nil {
		t.Fatal(err)
	} else if _, ok := eng.(*lia.Engine); !ok {
		t.Fatalf("New with WithShards(2) on a connected topology returned %T, want *lia.Engine", eng)
	}
	if _, err := lia.New(disconnected, lia.WithShards(-1)); err == nil {
		t.Fatal("New accepted a negative shard count")
	}
}

// TestShardedShardCapAndSinglePathComponents: k beyond the component count
// caps, and single-path components (one unbranched path each, reduced to a
// single virtual link) infer correctly.
func TestShardedShardCapAndSinglePathComponents(t *testing.T) {
	ctx := context.Background()
	rm, err := lia.NewTopology([]lia.Path{
		{Beacon: 0, Dst: 1, Links: []int{10, 11}},
		{Beacon: 0, Dst: 2, Links: []int{20}},
		{Beacon: 0, Dst: 3, Links: []int{30, 31, 32}},
	})
	if err != nil {
		t.Fatal(err)
	}
	se, err := lia.NewShardedEngine(rm, lia.WithShards(16))
	if err != nil {
		t.Fatal(err)
	}
	if se.NumComponents() != 3 {
		t.Fatalf("got %d components, want 3", se.NumComponents())
	}
	if se.NumShards() != 3 {
		t.Fatalf("WithShards(16) over 3 components produced %d shards, want 3", se.NumShards())
	}
	for _, y := range shardSnapshots(rm, 30, 5) {
		if err := se.Ingest(y); err != nil {
			t.Fatal(err)
		}
	}
	res, err := se.Infer(ctx, []float64{-0.01, -0.002, -0.03})
	if err != nil {
		t.Fatal(err)
	}
	// Each component has a 1x1 full-rank system: everything is kept and the
	// per-link log rate is the path observation itself.
	if len(res.Kept) != 3 || len(res.Removed) != 0 {
		t.Fatalf("kept %v removed %v, want all 3 kept", res.Kept, res.Removed)
	}
	for i, want := range []float64{-0.01, -0.002, -0.03} {
		kg, ok := rm.VirtualOf([]int{10, 20, 30}[i])
		if !ok {
			t.Fatalf("physical link of path %d not covered", i)
		}
		if res.LogRates[kg] != want {
			t.Fatalf("path %d: log rate %g, want %g", i, res.LogRates[kg], want)
		}
	}
}

// TestShardedIngestBatchAndConsumeParity: the three ingestion surfaces fold
// identical moments.
func TestShardedIngestBatchAndConsumeParity(t *testing.T) {
	ctx := context.Background()
	rm, snaps := disconnectedWorkload(t)
	mk := func() *lia.ShardedEngine {
		se, err := lia.NewShardedEngine(rm)
		if err != nil {
			t.Fatal(err)
		}
		return se
	}
	one, batch, consumed := mk(), mk(), mk()
	for _, y := range snaps {
		if err := one.Ingest(y); err != nil {
			t.Fatal(err)
		}
	}
	if err := batch.IngestBatch(snaps); err != nil {
		t.Fatal(err)
	}
	if n, err := consumed.Consume(ctx, lia.NewSliceSource(snaps)); err != nil || n != len(snaps) {
		t.Fatalf("Consume ingested %d (%v), want %d", n, err, len(snaps))
	}
	v1, err := one.Variances(ctx)
	if err != nil {
		t.Fatal(err)
	}
	for name, se := range map[string]*lia.ShardedEngine{"batch": batch, "consume": consumed} {
		if se.Snapshots() != len(snaps) {
			t.Fatalf("%s: %d snapshots, want %d", name, se.Snapshots(), len(snaps))
		}
		v, err := se.Variances(ctx)
		if err != nil {
			t.Fatal(err)
		}
		for k := range v1 {
			if v[k] != v1[k] {
				t.Fatalf("%s: link %d variance %g != per-snapshot %g", name, k, v[k], v1[k])
			}
		}
	}
}

// TestShardedErrorsAndStats: sentinel errors surface through the sharded
// fan-out, and Stats aggregates sensibly.
func TestShardedErrorsAndStats(t *testing.T) {
	ctx := context.Background()
	rm, snaps := disconnectedWorkload(t)
	se, err := lia.NewShardedEngine(rm, lia.WithShards(2))
	if err != nil {
		t.Fatal(err)
	}
	if err := se.Ingest(make([]float64, rm.NumPaths()+1)); !errors.Is(err, lia.ErrDimensionMismatch) {
		t.Fatalf("bad dimension ingest: %v", err)
	}
	if err := se.IngestBatch([][]float64{snaps[0], make([]float64, 1)}); !errors.Is(err, lia.ErrDimensionMismatch) {
		t.Fatalf("bad dimension batch: %v", err)
	}
	if se.Snapshots() != 0 {
		t.Fatalf("failed ingests advanced the epoch to %d", se.Snapshots())
	}
	if _, err := se.Infer(ctx, snaps[0]); !errors.Is(err, lia.ErrTooFewSnapshots) {
		t.Fatalf("inference before learning: %v", err)
	}
	st := se.Stats()
	if st.Shards != 2 || st.Components != 3 {
		t.Fatalf("Stats reports %d shards / %d components, want 2 / 3", st.Shards, st.Components)
	}
	if st.StateEpoch != -1 || st.EpochLag != 0 {
		t.Fatalf("pre-learning stats: %+v", st)
	}
	for _, y := range snaps {
		if err := se.Ingest(y); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := se.Variances(ctx); err != nil {
		t.Fatal(err)
	}
	st = se.Stats()
	if st.Snapshots != len(snaps) || st.StateEpoch != len(snaps) || st.EpochLag != 0 {
		t.Fatalf("post-rebuild stats: %+v", st)
	}
	// One rebuild per component.
	if st.Rebuilds != uint64(se.NumComponents()) {
		t.Fatalf("%d rebuilds after one warm-up, want %d", st.Rebuilds, se.NumComponents())
	}
	kept, removed, err := se.Eliminated(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(kept)+len(removed) != rm.NumLinks() {
		t.Fatalf("kept %d + removed %d != %d links", len(kept), len(removed), rm.NumLinks())
	}
	steady, err := se.Steady(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if steady.Epoch != len(snaps) {
		t.Fatalf("steady epoch %d, want %d", steady.Epoch, len(snaps))
	}
}

// TestScalingFingerprint prints a deterministic digest of the sharded and
// unsharded estimates. CI's scaling job runs it at GOMAXPROCS=1,2,4 and
// asserts the printed fingerprint never changes: every parallel path is
// bit-deterministic across worker counts.
func TestScalingFingerprint(t *testing.T) {
	ctx := context.Background()
	rm, snaps := disconnectedWorkload(t)
	h := sha256.New()
	feed := func(vals []float64) {
		var buf [8]byte
		for _, v := range vals {
			binary.LittleEndian.PutUint64(buf[:], math.Float64bits(v))
			h.Write(buf[:])
		}
	}
	for _, shards := range []int{1, 2, 3} {
		eng, err := lia.New(rm, lia.WithShards(shards))
		if err != nil {
			t.Fatal(err)
		}
		if err := eng.IngestBatch(snaps); err != nil {
			t.Fatal(err)
		}
		res, err := eng.Infer(ctx, snaps[0])
		if err != nil {
			t.Fatal(err)
		}
		feed(res.Variances)
		feed(res.LossRates)
		feed(res.LogRates)
	}
	t.Logf("fingerprint=%x", h.Sum(nil))
}
