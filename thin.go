package lia

import (
	"context"
	"math/rand/v2"
	"sync"
)

// ThinConfig tunes ThinSource's sampling.
type ThinConfig struct {
	// Keep is the probability of delivering each offered snapshot,
	// in (0, 1]. 0 selects 1 (no thinning); values outside (0, 1] are
	// clamped into it.
	Keep float64

	// Every, when > 1, switches from Bernoulli sampling to deterministic
	// striding: exactly one of every Every offered snapshots is kept (the
	// first of each stride) and Keep is ignored.
	Every int

	// Seed keys the Bernoulli draws. Each decision is drawn from a PCG
	// keyed by (Seed, offered-snapshot index), so a run's kept-set is a
	// pure function of the seed — independent of timing, retries upstream,
	// or how many snapshots the consumer ultimately pulls.
	Seed uint64
}

// ThinStats are ThinSource's sampling counters.
type ThinStats struct {
	// Offered counts snapshots pulled from the wrapped source.
	Offered uint64
	// Kept counts snapshots delivered to the consumer.
	Kept uint64
	// Thinned counts snapshots dropped by sampling (Offered − Kept).
	Thinned uint64
	// KeepRate is the realized sampling fraction Kept/Offered (0 before
	// the first snapshot).
	KeepRate float64
	// DivisorCorrection is Offered/Kept, the factor by which estimator
	// variance is inflated relative to ingesting the full stream: i.i.d.
	// thinning keeps the second-order moments the engine estimates
	// unbiased (each kept snapshot is an unmodified draw from the same
	// process), but the effective sample count behind every covariance is
	// divided by the keep rate, so confidence intervals widen by
	// √DivisorCorrection (Rahman et al., arXiv:2008.13424). Consumers
	// comparing thinned-run variances against full-run baselines must
	// divide by this factor. 0 before the first kept snapshot.
	DivisorCorrection float64
}

// Thinner is the SnapshotSource returned by ThinSource.
type Thinner struct {
	src SnapshotSource
	cfg ThinConfig

	mu      sync.Mutex
	offered uint64
	kept    uint64
}

// ThinSource wraps a source so only a sampled fraction of its snapshots
// reaches the consumer — the measurement-budget reduction of Rahman et
// al.: when probing every epoch is too expensive, an i.i.d.-thinned stream
// still identifies the same loss rates because the engine's second-order
// moments are unbiased under subsampling; only the estimator variance
// grows, by the divisor reported in Stats. Next pulls from the wrapped
// source until a kept snapshot arrives, so EOF and transport errors pass
// through at the position they occur.
//
// Thinning decisions are seeded and keyed by offered-snapshot index, never
// by wall clock, so a replay with the same seed keeps the same snapshots.
// The returned source composes like the other combinators — typically
// counting(sanitize(thin(retry(raw)))) — and implements io.Closer,
// propagating Close to the wrapped source when it is closeable.
func ThinSource(src SnapshotSource, cfg ThinConfig) *Thinner {
	if cfg.Keep <= 0 || cfg.Keep > 1 {
		cfg.Keep = 1
	}
	return &Thinner{src: src, cfg: cfg}
}

// Next implements SnapshotSource: it returns the next kept snapshot,
// counting and skipping thinned ones.
func (t *Thinner) Next(ctx context.Context) (Snapshot, error) {
	for {
		snap, err := t.src.Next(ctx)
		if err != nil {
			return Snapshot{}, err
		}
		t.mu.Lock()
		i := t.offered
		t.offered++
		keep := t.keepDraw(i)
		if keep {
			t.kept++
		}
		t.mu.Unlock()
		if keep {
			return snap, nil
		}
	}
}

// keepDraw decides snapshot index i's fate: stride position for Every > 1,
// otherwise a Bernoulli(Keep) draw keyed by (Seed, i).
func (t *Thinner) keepDraw(i uint64) bool {
	if t.cfg.Every > 1 {
		return i%uint64(t.cfg.Every) == 0
	}
	if t.cfg.Keep >= 1 {
		return true
	}
	rng := rand.New(rand.NewPCG(t.cfg.Seed^0x7417_5eed, i))
	return rng.Float64() < t.cfg.Keep
}

// Stats reports the sampling counters and the variance-divisor correction.
func (t *Thinner) Stats() ThinStats {
	t.mu.Lock()
	offered, kept := t.offered, t.kept
	t.mu.Unlock()
	st := ThinStats{Offered: offered, Kept: kept, Thinned: offered - kept}
	if offered > 0 {
		st.KeepRate = float64(kept) / float64(offered)
	}
	if kept > 0 {
		st.DivisorCorrection = float64(offered) / float64(kept)
	}
	return st
}

// Close propagates to the wrapped source when it is closeable.
func (t *Thinner) Close() error { return CloseSource(t.src) }
