package lia_test

import (
	"bytes"
	"context"
	"errors"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"lia"
	"lia/wal"
)

// openDurable builds a durable engine over rm in dir with the given options.
func openDurable(t *testing.T, rm *lia.RoutingMatrix, dir string, opts []lia.Option) *lia.DurableEngine {
	t.Helper()
	eng, err := lia.New(rm, opts...)
	if err != nil {
		t.Fatalf("New durable: %v", err)
	}
	d, ok := eng.(*lia.DurableEngine)
	if !ok {
		t.Fatalf("New with WithDurability returned %T", eng)
	}
	return d
}

// ingestBatches feeds snaps[from:to] in uneven batch sizes, exercising
// multi-snapshot WAL records with ragged boundaries.
func ingestBatches(t *testing.T, eng lia.Inferencer, snaps [][]float64, from, to int) {
	t.Helper()
	sizes := []int{1, 4, 7, 3}
	for i, s := from, 0; i < to; s++ {
		n := sizes[s%len(sizes)]
		if i+n > to {
			n = to - i
		}
		if err := eng.IngestBatch(snaps[i : i+n]); err != nil {
			t.Fatalf("IngestBatch at %d: %v", i, err)
		}
		i += n
	}
}

// variancesBits fetches Variances and asserts bitwise equality against want.
func variancesBits(t *testing.T, eng lia.Inferencer, want []float64, label string) {
	t.Helper()
	got, err := eng.Variances(context.Background())
	if err != nil {
		t.Fatalf("%s: Variances: %v", label, err)
	}
	if len(got) != len(want) {
		t.Fatalf("%s: %d variances, want %d", label, len(got), len(want))
	}
	for k := range got {
		if math.Float64bits(got[k]) != math.Float64bits(want[k]) {
			t.Fatalf("%s: variance %d bits differ: %x vs %x (%g vs %g)",
				label, k, math.Float64bits(got[k]), math.Float64bits(want[k]), got[k], want[k])
		}
	}
}

// TestDurableRecoveryBitwise is the acceptance invariant for all three
// moment configurations: ingest part of a stream, crash (abandon without
// Close), recover in a new engine, finish the stream, and demand
// Variances/Infer output bitwise-identical to the same stream ingested by a
// plain uninterrupted engine.
func TestDurableRecoveryBitwise(t *testing.T) {
	ctx := context.Background()
	configs := []struct {
		name string
		opts []lia.Option
	}{
		{"cumulative", nil},
		{"windowed", []lia.Option{lia.WithWindow(16)}},
		{"decay", []lia.Option{lia.WithDecay(0.97)}},
	}
	for _, cfg := range configs {
		t.Run(cfg.name, func(t *testing.T) {
			rm, err := lia.NewTopology(apiTreePaths(2, 3))
			if err != nil {
				t.Fatal(err)
			}
			snaps := shardSnapshots(rm, 57, 11)
			const crashAt = 36

			// Reference: one uninterrupted engine over the whole stream,
			// built through the same New dispatch (the tree topology is
			// link-disjoint at the top level, so New auto-shards it).
			ref, err := lia.New(rm, cfg.opts...)
			if err != nil {
				t.Fatal(err)
			}
			ingestBatches(t, ref, snaps, 0, len(snaps))
			wantVars, err := ref.Variances(ctx)
			if err != nil {
				t.Fatal(err)
			}

			dir := t.TempDir()
			dopts := append(append([]lia.Option{}, cfg.opts...),
				lia.WithDurability(dir, lia.DurabilityOptions{CheckpointEvery: 10, Fsync: wal.SyncInterval}))
			first := openDurable(t, rm, dir, dopts)
			ingestBatches(t, first, snaps, 0, crashAt)
			// Crash: abandon without Close. Everything acked is in the WAL
			// (one write syscall per batch), exactly as after a SIGKILL.

			second := openDurable(t, rm, dir, dopts)
			ds := second.DurabilityStats()
			if got := second.Snapshots(); got != crashAt {
				t.Fatalf("recovered %d snapshots, want %d (stats: %+v)", got, crashAt, ds)
			}
			if ds.ReplayedSnapshots == 0 {
				t.Fatalf("recovery replayed nothing: %+v", ds)
			}
			if ds.RecoveredEpoch == 0 || ds.RecoveredEpoch >= crashAt {
				t.Fatalf("recovered epoch %d outside (0, %d)", ds.RecoveredEpoch, crashAt)
			}
			ingestBatches(t, second, snaps, crashAt, len(snaps))
			variancesBits(t, second, wantVars, "recovered engine")

			wantRes, err := ref.Infer(ctx, snaps[0])
			if err != nil {
				t.Fatal(err)
			}
			gotRes, err := second.Infer(ctx, snaps[0])
			if err != nil {
				t.Fatal(err)
			}
			for k := range wantRes.LossRates {
				if math.Float64bits(gotRes.LossRates[k]) != math.Float64bits(wantRes.LossRates[k]) {
					t.Fatalf("Infer loss rate %d differs after recovery", k)
				}
			}
			if err := second.Close(); err != nil {
				t.Fatalf("Close: %v", err)
			}
		})
	}
}

// TestDurableShardedRecoveryBitwise runs the same crash-recover-finish cycle
// over a disconnected topology, where New wraps a ShardedEngine.
func TestDurableShardedRecoveryBitwise(t *testing.T) {
	rm, snaps := disconnectedWorkload(t)
	const crashAt = 40

	ref, err := lia.New(rm, lia.WithShards(2))
	if err != nil {
		t.Fatal(err)
	}
	if err := ref.IngestBatch(snaps); err != nil {
		t.Fatal(err)
	}
	wantVars, err := ref.Variances(context.Background())
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	opts := []lia.Option{lia.WithShards(2),
		lia.WithDurability(dir, lia.DurabilityOptions{CheckpointEvery: 16})}
	first := openDurable(t, rm, dir, opts)
	if st := first.Stats(); st.Components < 2 {
		t.Fatalf("expected sharded inner engine, got %d components", st.Components)
	}
	ingestBatches(t, first, snaps, 0, crashAt)
	// Crash without Close, then recover and finish the stream.
	second := openDurable(t, rm, dir, opts)
	if got := second.Snapshots(); got != crashAt {
		t.Fatalf("recovered %d snapshots, want %d", got, crashAt)
	}
	ingestBatches(t, second, snaps, crashAt, len(snaps))
	variancesBits(t, second, wantVars, "recovered sharded engine")
	if err := second.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestDurableCorruptNewestCheckpoint truncates the newest checkpoint and
// expects recovery to fall back to the previous one with a longer WAL
// replay — no operator intervention, same bitwise answers — and to repair
// the directory (fresh checkpoint written, corrupt file gone).
func TestDurableCorruptNewestCheckpoint(t *testing.T) {
	rm, err := lia.NewTopology(apiTreePaths(2, 3))
	if err != nil {
		t.Fatal(err)
	}
	snaps := shardSnapshots(rm, 36, 5)

	ref, err := lia.New(rm)
	if err != nil {
		t.Fatal(err)
	}
	ingestBatches(t, ref, snaps, 0, len(snaps))
	wantVars, err := ref.Variances(context.Background())
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	opts := []lia.Option{lia.WithDurability(dir, lia.DurabilityOptions{CheckpointEvery: 10})}
	first := openDurable(t, rm, dir, opts)
	// The ragged batch sizes put checkpoint boundaries at epochs 12 and 27
	// (checkpoints land on batch boundaries once >= CheckpointEvery
	// snapshots accumulated); keep is 2 so both survive.
	ingestBatches(t, first, snaps, 0, len(snaps))
	// Crash, then corrupt the newest checkpoint by truncating it.
	newest := newestCheckpoint(t, dir)
	info, err := os.Stat(newest)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(newest, info.Size()/2); err != nil {
		t.Fatal(err)
	}

	second := openDurable(t, rm, dir, opts)
	ds := second.DurabilityStats()
	if ds.CorruptCheckpoints != 1 {
		t.Fatalf("CorruptCheckpoints = %d, want 1 (%+v)", ds.CorruptCheckpoints, ds)
	}
	if ds.RecoveredEpoch != 12 {
		t.Fatalf("fell back to epoch %d, want 12", ds.RecoveredEpoch)
	}
	if ds.ReplayedSnapshots != 24 {
		t.Fatalf("replayed %d snapshots, want 24", ds.ReplayedSnapshots)
	}
	if got := second.Snapshots(); got != len(snaps) {
		t.Fatalf("recovered %d snapshots, want %d", got, len(snaps))
	}
	variancesBits(t, second, wantVars, "fallback recovery")
	// Repair: recovery re-checkpoints the full state and removes the bad file.
	if cur := newestCheckpoint(t, dir); !strings.Contains(cur, "00000000000000000036") {
		t.Fatalf("expected repair checkpoint at epoch 36, newest is %s", filepath.Base(cur))
	}
	second.Close()
}

func newestCheckpoint(t *testing.T, dir string) string {
	t.Helper()
	matches, err := filepath.Glob(filepath.Join(dir, "checkpoint-*.ckpt"))
	if err != nil || len(matches) == 0 {
		t.Fatalf("no checkpoints in %s (err %v)", dir, err)
	}
	return matches[len(matches)-1]
}

// TestDurableNothingSalvageable corrupts every checkpoint and removes the
// WAL; recovery must refuse with a typed *lia.CorruptStateError instead of
// silently booting cold over dead state.
func TestDurableNothingSalvageable(t *testing.T) {
	rm, err := lia.NewTopology(apiTreePaths(2, 2))
	if err != nil {
		t.Fatal(err)
	}
	snaps := shardSnapshots(rm, 30, 3)
	dir := t.TempDir()
	opts := []lia.Option{lia.WithDurability(dir, lia.DurabilityOptions{CheckpointEvery: 10})}
	first := openDurable(t, rm, dir, opts)
	ingestBatches(t, first, snaps, 0, len(snaps))
	first.Close()

	ckpts, _ := filepath.Glob(filepath.Join(dir, "checkpoint-*.ckpt"))
	if len(ckpts) == 0 {
		t.Fatal("no checkpoints written")
	}
	for _, ck := range ckpts {
		if err := os.WriteFile(ck, bytes.Repeat([]byte{0xAB}, 64), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	segs, _ := filepath.Glob(filepath.Join(dir, "wal-*.seg"))
	for _, seg := range segs {
		if err := os.Remove(seg); err != nil {
			t.Fatal(err)
		}
	}

	_, err = lia.New(rm, opts...)
	var cse *lia.CorruptStateError
	if !errors.As(err, &cse) {
		t.Fatalf("got %v, want *lia.CorruptStateError", err)
	}
	if cse.Dir != dir || len(cse.Checkpoints) == 0 {
		t.Fatalf("error detail: %+v", cse)
	}
}

// TestDurableColdBoot: an empty (or absent) state dir boots cold, exactly as
// an engine without durability.
func TestDurableColdBoot(t *testing.T) {
	rm, err := lia.NewTopology(shardStar(0, 0, 5))
	if err != nil {
		t.Fatal(err)
	}
	dir := filepath.Join(t.TempDir(), "not-yet-created")
	d := openDurable(t, rm, dir, []lia.Option{lia.WithDurability(dir, lia.DurabilityOptions{})})
	if d.Snapshots() != 0 {
		t.Fatalf("cold boot has %d snapshots", d.Snapshots())
	}
	ds := d.DurabilityStats()
	if ds.RecoveredEpoch != 0 || ds.ReplayedSnapshots != 0 || ds.CorruptCheckpoints != 0 {
		t.Fatalf("cold boot stats: %+v", ds)
	}
	if _, err := d.Variances(context.Background()); !errors.Is(err, lia.ErrTooFewSnapshots) {
		t.Fatalf("cold engine Variances: %v, want ErrTooFewSnapshots", err)
	}
	d.Close()
}

// TestDurableGracefulClose: Close checkpoints the tail, so the next boot
// restores everything from the checkpoint and replays nothing.
func TestDurableGracefulClose(t *testing.T) {
	rm, err := lia.NewTopology(apiTreePaths(2, 2))
	if err != nil {
		t.Fatal(err)
	}
	snaps := shardSnapshots(rm, 23, 9)
	dir := t.TempDir()
	opts := []lia.Option{lia.WithDurability(dir, lia.DurabilityOptions{CheckpointEvery: 10})}
	first := openDurable(t, rm, dir, opts)
	ingestBatches(t, first, snaps, 0, len(snaps))
	if err := first.Close(); err != nil {
		t.Fatal(err)
	}
	if err := first.Ingest(snaps[0]); err == nil {
		t.Fatal("Ingest after Close succeeded")
	}

	second := openDurable(t, rm, dir, opts)
	ds := second.DurabilityStats()
	if ds.RecoveredEpoch != uint64(len(snaps)) || ds.ReplayedSnapshots != 0 {
		t.Fatalf("graceful restart stats: %+v", ds)
	}
	second.Close()
}

// TestDurableStateAgeSurvivesRestore: the checkpoint carries the last
// rebuild's wall time, so a restored engine reports a continuous StateAge
// instead of resetting to boot.
func TestDurableStateAgeSurvivesRestore(t *testing.T) {
	// Connected star, so New picks the plain Engine and StateEpoch is the
	// global ingestion epoch.
	rm, err := lia.NewTopology(shardStar(0, 0, 6))
	if err != nil {
		t.Fatal(err)
	}
	snaps := shardSnapshots(rm, 12, 1)
	dir := t.TempDir()
	opts := []lia.Option{lia.WithDurability(dir, lia.DurabilityOptions{CheckpointEvery: 100})}
	first := openDurable(t, rm, dir, opts)
	ingestBatches(t, first, snaps, 0, len(snaps))
	if _, err := first.Variances(context.Background()); err != nil {
		t.Fatal(err) // force a rebuild so a builtAt exists to persist
	}
	time.Sleep(20 * time.Millisecond)
	if err := first.Close(); err != nil {
		t.Fatal(err)
	}

	second := openDurable(t, rm, dir, opts)
	st := second.Stats()
	if st.StateEpoch != -1 {
		t.Fatalf("restored engine already has a state epoch %d", st.StateEpoch)
	}
	if st.StateAge < 20*time.Millisecond {
		t.Fatalf("StateAge %v does not span the restart", st.StateAge)
	}
	// After the first post-restore rebuild, age tracks the fresh state.
	if _, err := second.Variances(context.Background()); err != nil {
		t.Fatal(err)
	}
	if st = second.Stats(); st.StateEpoch != len(snaps) {
		t.Fatalf("post-restore rebuild at epoch %d", st.StateEpoch)
	}
	second.Close()
}

// TestDurableConfigMismatchRejected: a checkpoint from a windowed engine
// must not install into a cumulative one.
func TestDurableConfigMismatch(t *testing.T) {
	rm, err := lia.NewTopology(apiTreePaths(2, 2))
	if err != nil {
		t.Fatal(err)
	}
	snaps := shardSnapshots(rm, 20, 2)
	win, err := lia.NewEngine(rm, lia.WithWindow(8))
	if err != nil {
		t.Fatal(err)
	}
	ingestBatches(t, win, snaps, 0, len(snaps))
	var buf bytes.Buffer
	if err := win.Checkpoint(&buf); err != nil {
		t.Fatal(err)
	}
	plain, err := lia.NewEngine(rm)
	if err != nil {
		t.Fatal(err)
	}
	if err := plain.RestoreFrom(bytes.NewReader(buf.Bytes())); err == nil {
		t.Fatal("cumulative engine accepted a windowed checkpoint")
	}
	if got := plain.Snapshots(); got != 0 {
		t.Fatalf("failed restore mutated the engine: %d snapshots", got)
	}
	// The right configuration round-trips.
	win2, err := lia.NewEngine(rm, lia.WithWindow(8))
	if err != nil {
		t.Fatal(err)
	}
	if err := win2.RestoreFrom(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatalf("matching restore failed: %v", err)
	}
	wantVars, err := win.Variances(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	variancesBits(t, win2, wantVars, "direct checkpoint round-trip")
}
