package lia_test

import (
	"context"
	"errors"
	"testing"

	"lia"
	"lia/internal/topology"
)

// TestIngestSparseValidation: malformed sparse snapshots are rejected with
// ErrDimensionMismatch, partial-component coverage with ErrPartialComponent,
// and — the all-or-nothing contract — a rejected snapshot leaves every
// moment untouched, including components the snapshot fully covered.
func TestIngestSparseValidation(t *testing.T) {
	ctx := context.Background()
	rm, snaps := disconnectedWorkload(t)
	se, err := lia.NewShardedEngine(rm, lia.WithShards(2))
	if err != nil {
		t.Fatal(err)
	}
	for _, y := range snaps {
		if err := se.Ingest(y); err != nil {
			t.Fatal(err)
		}
	}
	base, err := se.Variances(ctx)
	if err != nil {
		t.Fatal(err)
	}

	np := rm.NumPaths()
	bad := []struct {
		name  string
		paths []int
		n     int
	}{
		{"empty", nil, 0},
		{"length mismatch", []int{0, 3}, 1},
		{"descending", []int{3, 0}, 2},
		{"duplicate", []int{3, 3}, 2},
		{"out of range", []int{0, np}, 2},
		{"negative", []int{-1, 0}, 2},
	}
	for _, tc := range bad {
		if err := se.IngestSparse(tc.paths, make([]float64, tc.n)); !errors.Is(err, lia.ErrDimensionMismatch) {
			t.Fatalf("%s: err = %v, want ErrDimensionMismatch", tc.name, err)
		}
	}

	// Component 0 fully covered, component 1 missing one path: rejected as
	// a whole, nothing folds anywhere.
	part := se.Partition()
	c0, c1 := part.Component(0), part.Component(1)
	paths := append(append([]int(nil), c0.Paths...), c1.Paths[:len(c1.Paths)-1]...)
	if err := se.IngestSparse(sortedInts(paths), make([]float64, len(paths))); !errors.Is(err, lia.ErrPartialComponent) {
		t.Fatalf("partial component: err = %v, want ErrPartialComponent", err)
	}
	if got := se.Snapshots(); got != len(snaps) {
		t.Fatalf("rejected sparse snapshot advanced the epoch: %d, want %d", got, len(snaps))
	}
	after, err := se.Variances(ctx)
	if err != nil {
		t.Fatal(err)
	}
	for k := range base {
		if after[k] != base[k] {
			t.Fatalf("link %d: variance moved %g -> %g after a rejected sparse snapshot", k, base[k], after[k])
		}
	}
}

// sortedInts returns a sorted copy (insertion sort; test-sized inputs).
func sortedInts(xs []int) []int {
	out := append([]int(nil), xs...)
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// TestEngineIngestSparse: the plain engine accepts exactly full coverage —
// where IngestSparse is Ingest — and rejects anything less with
// ErrPartialComponent.
func TestEngineIngestSparse(t *testing.T) {
	ctx := context.Background()
	rm, err := lia.NewTopology(shardStar(0, 100, 6))
	if err != nil {
		t.Fatal(err)
	}
	eng, err := lia.NewEngine(rm)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := lia.NewEngine(rm)
	if err != nil {
		t.Fatal(err)
	}
	all := make([]int, rm.NumPaths())
	for i := range all {
		all[i] = i
	}
	for _, y := range shardSnapshots(rm, 30, 5) {
		if err := eng.IngestSparse(all, y); err != nil {
			t.Fatal(err)
		}
		if err := ref.Ingest(y); err != nil {
			t.Fatal(err)
		}
	}
	got, err := eng.Variances(ctx)
	if err != nil {
		t.Fatal(err)
	}
	want, err := ref.Variances(ctx)
	if err != nil {
		t.Fatal(err)
	}
	for k := range want {
		if got[k] != want[k] {
			t.Fatalf("link %d: IngestSparse %g != Ingest %g (not bitwise)", k, got[k], want[k])
		}
	}
	if err := eng.IngestSparse(all[:len(all)-1], make([]float64, len(all)-1)); !errors.Is(err, lia.ErrPartialComponent) {
		t.Fatalf("partial coverage on plain engine: err = %v, want ErrPartialComponent", err)
	}
}

// TestShardedIngestSparseSkipsUntouched is the engine-level O(delta)
// contract: after sparse snapshots covering only component 0, the next
// rebuild wave rebuilds exactly that component — its estimates
// bitwise-match a standalone reference engine fed the same rows — while
// every untouched component's variances stay bitwise-frozen and the wave
// counters (DirtyComponents, DirtyShards, SkippedComponents) record the
// skipped work.
func TestShardedIngestSparseSkipsUntouched(t *testing.T) {
	ctx := context.Background()
	rm, snaps := disconnectedWorkload(t)
	se, err := lia.NewShardedEngine(rm, lia.WithShards(2))
	if err != nil {
		t.Fatal(err)
	}
	part := se.Partition()
	comp0 := part.Component(0)

	// Standalone reference over component 0's paths alone.
	paths := make([]lia.Path, len(comp0.Paths))
	for pl, pg := range comp0.Paths {
		paths[pl] = rm.Path(pg)
	}
	crm, err := lia.NewTopology(paths)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := lia.NewEngine(crm)
	if err != nil {
		t.Fatal(err)
	}

	sub := make([]float64, len(comp0.Paths))
	for _, y := range snaps {
		if err := se.Ingest(y); err != nil {
			t.Fatal(err)
		}
		for pl, pg := range comp0.Paths {
			sub[pl] = y[pg]
		}
		if err := ref.Ingest(sub); err != nil {
			t.Fatal(err)
		}
	}
	base, err := se.Variances(ctx) // wave 1: every component rebuilds
	if err != nil {
		t.Fatal(err)
	}

	// Steady state: only component 0 sees traffic.
	for _, y := range shardSnapshots(rm, 5, 42) {
		for pl, pg := range comp0.Paths {
			sub[pl] = y[pg]
		}
		if err := se.IngestSparse(comp0.Paths, sub); err != nil {
			t.Fatal(err)
		}
		if err := ref.Ingest(sub); err != nil {
			t.Fatal(err)
		}
	}
	vars, err := se.Variances(ctx) // wave 2: component 0 only
	if err != nil {
		t.Fatal(err)
	}
	want, err := ref.Variances(ctx)
	if err != nil {
		t.Fatal(err)
	}

	comp0Link := make(map[int]bool, len(comp0.Links))
	for _, kg := range comp0.Links {
		comp0Link[kg] = true
	}
	for kl := 0; kl < crm.NumLinks(); kl++ {
		kg, ok := rm.VirtualOf(crm.Members(kl)[0])
		if !ok {
			t.Fatalf("component link %d lost its global identity", kl)
		}
		if vars[kg] != want[kl] {
			t.Fatalf("covered link %d: sparse-fed sharded variance %g != reference %g (not bitwise)",
				kg, vars[kg], want[kl])
		}
	}
	for k := range vars {
		if !comp0Link[k] && vars[k] != base[k] {
			t.Fatalf("untouched link %d: variance moved %g -> %g across a wave that should have skipped it",
				k, base[k], vars[k])
		}
	}

	st := se.Stats()
	if st.DirtyComponents != 1 {
		t.Fatalf("DirtyComponents = %d, want 1 (only component 0 saw snapshots)", st.DirtyComponents)
	}
	if st.DirtyShards != 1 {
		t.Fatalf("DirtyShards = %d, want 1 (one rebuild group held the dirty component)", st.DirtyShards)
	}
	if want := uint64(part.NumComponents() - 1); st.SkippedComponents != want {
		t.Fatalf("SkippedComponents = %d, want %d (wave 2 skipped every untouched component)",
			st.SkippedComponents, want)
	}
	if st.Snapshots != len(snaps)+5 {
		t.Fatalf("Snapshots = %d, want %d (sparse snapshots advance the global epoch)", st.Snapshots, len(snaps)+5)
	}
}

// TestEngineStatsDeltaRebuilds wires the Phase-1 delta-fold telemetry
// through Engine.Stats: a windowed engine at capacity reports one
// DeltaRebuild per warm rebuild (with estimates bitwise-equal to a
// cold-built reference each time), while a decayed engine — whose divisor
// moves on every add — reports zero, degrading to full folds without ever
// diverging.
func TestEngineStatsDeltaRebuilds(t *testing.T) {
	ctx := context.Background()
	rm, err := lia.NewTopology(shardStar(0, 100, 8))
	if err != nil {
		t.Fatal(err)
	}
	const window = 10
	stream := shardSnapshots(rm, window+4, 3)

	// The delta fold lives on the cacheable normal-equations path; a system
	// this small would auto-pick dense QR, so pin the method.
	check := func(t *testing.T, opt lia.Option, wantDelta func(i int) uint64) {
		eng, err := lia.NewEngine(rm, opt, lia.WithVarianceMethod(lia.VarianceNormalEquations))
		if err != nil {
			t.Fatal(err)
		}
		for _, y := range stream[:window] {
			if err := eng.Ingest(y); err != nil {
				t.Fatal(err)
			}
		}
		if _, err := eng.Variances(ctx); err != nil {
			t.Fatal(err)
		}
		if st := eng.Stats(); st.DeltaRebuilds != 0 {
			t.Fatalf("priming rebuild: DeltaRebuilds = %d, want 0 (first fold is always full)", st.DeltaRebuilds)
		}
		for i, y := range stream[window:] {
			if err := eng.Ingest(y); err != nil {
				t.Fatal(err)
			}
			got, err := eng.Variances(ctx)
			if err != nil {
				t.Fatal(err)
			}
			// Cold reference: a fresh engine fed the same stream, first solve.
			cold, err := lia.NewEngine(rm, opt, lia.WithVarianceMethod(lia.VarianceNormalEquations))
			if err != nil {
				t.Fatal(err)
			}
			for _, yy := range stream[:window+i+1] {
				if err := cold.Ingest(yy); err != nil {
					t.Fatal(err)
				}
			}
			want, err := cold.Variances(ctx)
			if err != nil {
				t.Fatal(err)
			}
			for k := range want {
				if got[k] != want[k] {
					t.Fatalf("epoch %d link %d: warm %g != cold %g (not bitwise)", i, k, got[k], want[k])
				}
			}
			st := eng.Stats()
			if st.DeltaRebuilds != wantDelta(i) {
				t.Fatalf("epoch %d: DeltaRebuilds = %d, want %d", i, st.DeltaRebuilds, wantDelta(i))
			}
			if st.DirtyShards < 1 {
				t.Fatalf("epoch %d: DirtyShards = %d after a rebuild", i, st.DirtyShards)
			}
		}
	}

	t.Run("windowed", func(t *testing.T) {
		check(t, lia.WithWindow(window), func(i int) uint64 { return uint64(i + 1) })
	})
	t.Run("decay", func(t *testing.T) {
		check(t, lia.WithDecay(0.9), func(int) uint64 { return 0 })
	})
}

// TestWatcherComponentIsolation: on a disconnected topology, deactivating
// every path of one component removes exactly that component's coverage —
// the maintained normal equations of the other components are untouched, so
// their variances hold to within the solver's regularization — and
// reactivating restores
// coverage with variances matching the original system to rounding.
func TestWatcherComponentIsolation(t *testing.T) {
	rm, snaps := disconnectedWorkload(t)
	eng, err := lia.NewEngine(rm)
	if err != nil {
		t.Fatal(err)
	}
	for _, y := range snaps {
		if err := eng.Ingest(y); err != nil {
			t.Fatal(err)
		}
	}
	w, err := eng.Watch()
	if err != nil {
		t.Fatal(err)
	}
	base, err := w.Variances()
	if err != nil {
		t.Fatal(err)
	}

	part := topology.NewPartition(rm)
	comp0 := part.Component(0)
	comp0Link := make(map[int]bool, len(comp0.Links))
	for _, kg := range comp0.Links {
		comp0Link[kg] = true
	}
	for _, p := range comp0.Paths {
		if err := w.Deactivate(p); err != nil {
			t.Fatal(err)
		}
	}
	covered := w.Covered()
	for k, on := range covered {
		if on == comp0Link[k] {
			t.Fatalf("link %d: covered=%v after deactivating component 0 (in comp0: %v)", k, on, comp0Link[k])
		}
	}
	vars, err := w.Variances()
	if err != nil {
		t.Fatal(err)
	}
	// The untouched components' equations are exactly as before; their
	// solved variances can shift only through the solver's global
	// regularization, i.e. far below estimation noise.
	for k := range vars {
		if comp0Link[k] {
			continue
		}
		diff := vars[k] - base[k]
		if diff < 0 {
			diff = -diff
		}
		scale := base[k]
		if scale < 0 {
			scale = -scale
		}
		if scale < 1e-12 {
			scale = 1e-12
		}
		if diff > 1e-9*scale {
			t.Fatalf("link %d of an untouched component: variance moved %g -> %g on a foreign Deactivate",
				k, base[k], vars[k])
		}
	}

	for _, p := range comp0.Paths {
		if err := w.Reactivate(p); err != nil {
			t.Fatal(err)
		}
	}
	for k, on := range w.Covered() {
		if !on {
			t.Fatalf("link %d still uncovered after reactivating component 0", k)
		}
	}
	restored, err := w.Variances()
	if err != nil {
		t.Fatal(err)
	}
	for k := range restored {
		diff := restored[k] - base[k]
		if diff < 0 {
			diff = -diff
		}
		scale := base[k]
		if scale < 0 {
			scale = -scale
		}
		if scale < 1e-12 {
			scale = 1e-12
		}
		if diff > 1e-9*scale {
			t.Fatalf("link %d: variance %g after deactivate/reactivate round trip, want %g (within rounding)",
				k, restored[k], base[k])
		}
	}
}
