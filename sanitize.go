package lia

import (
	"context"
	"math"
	"sync/atomic"
)

// SanitizeConfig tunes SanitizeSource's quarantine rules.
type SanitizeConfig struct {
	// Dim, when positive, quarantines snapshots whose observation vector
	// is not exactly this long (the routing matrix's path count). 0 skips
	// the check.
	Dim int

	// MaxAbs, when positive, quarantines snapshots containing an entry
	// with |v| > MaxAbs — a cheap spike filter for corrupted measurements
	// (a log transmission rate of −10 is already a loss rate above
	// 99.99%). 0 disables the bound.
	MaxAbs float64
}

// SanitizeStats are SanitizeSource's quarantine counters, one per rule
// plus the total. Counters are cumulative over the source's lifetime.
type SanitizeStats struct {
	// Passed counts snapshots delivered to the consumer.
	Passed uint64
	// Quarantined is the total number of snapshots withheld.
	Quarantined uint64
	// NonFinite counts snapshots containing NaN or ±Inf entries.
	NonFinite uint64
	// Dimension counts snapshots with the wrong vector length (or an
	// empty vector, counted regardless of Dim).
	Dimension uint64
	// Outlier counts snapshots exceeding the MaxAbs bound.
	Outlier uint64
}

// Sanitizer is the SnapshotSource returned by SanitizeSource.
type Sanitizer struct {
	src SnapshotSource
	cfg SanitizeConfig

	passed, quarantined        atomic.Uint64
	nonFinite, badDim, outlier atomic.Uint64
}

// SanitizeSource wraps a source so that poisoned snapshots — NaN/Inf
// entries, wrong dimensions, out-of-range spikes — are quarantined behind
// counters instead of reaching the engine's moment accumulators, where a
// single NaN would contaminate every covariance (and with it every later
// variance estimate) irreversibly under Welford folding. Quarantined
// snapshots are counted by rule (see Stats) and silently skipped: Next
// pulls from the wrapped source until a clean snapshot arrives, so the
// consumer only ever observes sane data. Clean snapshots pass through
// untouched — the wrapper never alters values, so estimates over a clean
// stream are bitwise-identical with or without it.
//
// The returned source implements io.Closer, propagating Close to the
// wrapped source when it is closeable.
func SanitizeSource(src SnapshotSource, cfg SanitizeConfig) *Sanitizer {
	return &Sanitizer{src: src, cfg: cfg}
}

// Next implements SnapshotSource: it returns the next clean snapshot,
// counting and skipping quarantined ones.
func (s *Sanitizer) Next(ctx context.Context) (Snapshot, error) {
	for {
		snap, err := s.src.Next(ctx)
		if err != nil {
			return Snapshot{}, err
		}
		if reason := s.check(snap.Y); reason != nil {
			reason.Add(1)
			s.quarantined.Add(1)
			continue
		}
		s.passed.Add(1)
		return snap, nil
	}
}

// check classifies one observation vector, returning the counter of the
// violated rule (nil for a clean vector). Rules are checked in severity
// order: dimension, finiteness, bounds.
func (s *Sanitizer) check(y []float64) *atomic.Uint64 {
	if len(y) == 0 || (s.cfg.Dim > 0 && len(y) != s.cfg.Dim) {
		return &s.badDim
	}
	for _, v := range y {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return &s.nonFinite
		}
	}
	if s.cfg.MaxAbs > 0 {
		for _, v := range y {
			if math.Abs(v) > s.cfg.MaxAbs {
				return &s.outlier
			}
		}
	}
	return nil
}

// Stats reports the quarantine counters. Safe for concurrent use with
// Next; a read during a concurrent skip is approximate to within the
// in-flight snapshot.
func (s *Sanitizer) Stats() SanitizeStats {
	return SanitizeStats{
		Passed:      s.passed.Load(),
		Quarantined: s.quarantined.Load(),
		NonFinite:   s.nonFinite.Load(),
		Dimension:   s.badDim.Load(),
		Outlier:     s.outlier.Load(),
	}
}

// Close propagates to the wrapped source when it is closeable.
func (s *Sanitizer) Close() error { return CloseSource(s.src) }
